package fft

import (
	"fmt"
	"math"
	"sync"

	"soifft/internal/cvec"
	"soifft/internal/par"
)

// Variant selects the large-1D-FFT implementation strategy, mirroring the
// Fig. 10 ablation of the paper (Section 5.2):
//
//	SixStepNaive     Bailey's 6-step algorithm with explicit transposes and
//	                 a separate full-size twiddle pass: 13 memory sweeps
//	                 (Fig. 4a of the paper).
//	SixStepOpt       loops fused, columns staged through contiguous
//	                 cache-resident tiles, dynamic-block twiddle tables:
//	                 4 memory sweeps (Fig. 4b).
//	SixStepPipelined SixStepOpt plus explicit load/compute/store pipelining
//	                 across goroutine teams, standing in for the SMT
//	                 pipelining of Fig. 5 ("latency-hiding").
//	SixStepFineGrain SixStepPipelined for the column pass, plus cooperative
//	                 multi-worker execution of each long row FFT so the
//	                 working set of a single FFT never exceeds one tile
//	                 ("fine-grain parallelization", Section 5.2.3).
type Variant int

const (
	SixStepNaive Variant = iota
	SixStepOpt
	SixStepPipelined
	SixStepFineGrain
)

// String returns the label used in benchmark output, matching Fig. 10.
func (v Variant) String() string {
	switch v {
	case SixStepNaive:
		return "6-step-naive"
	case SixStepOpt:
		return "6-step-opt"
	case SixStepPipelined:
		return "latency-hiding"
	case SixStepFineGrain:
		return "fine-grain"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// MemorySweeps returns the number of full passes over the dataset the
// variant performs (loads + stores of the entire array), the quantity the
// paper's bandwidth model is built on. The pipelined and fine-grain
// variants keep the 4-sweep structure and additionally hide latency /
// shrink working sets, plus one tile-sized core-to-core read counted as a
// fifth partial sweep in the paper's 16M analysis.
func (v Variant) MemorySweeps() int {
	if v == SixStepNaive {
		return 13
	}
	return 4
}

// AllVariants lists the ablation order of Fig. 10.
var AllVariants = []Variant{SixStepNaive, SixStepOpt, SixStepPipelined, SixStepFineGrain}

// tileCols is the number of columns staged together in the fused column
// pass ("8 columns at a time", Fig. 4b): 8 complex128 values per row of a
// tile is a full cache line pair, and 8 independent P-point FFTs is the
// outer-loop vectorization width of the paper.
const tileCols = 8

// SixStep computes large 1D FFTs of length n = n1*n2 via Bailey's 2D
// decomposition. It also supports fusing a pointwise demodulation multiply
// into the final pass (SetDemod), saving the two extra memory sweeps the
// paper describes in "Saving Bandwidth by Fusing Demodulation and FFT".
type SixStep struct {
	n, n1, n2 int
	p1, p2    *Plan
	variant   Variant
	workers   int

	// Naive variant: full-size twiddle table tw[j2*n1+k1] = W_n^{j2*k1}.
	twFull []complex128
	// Optimized variants: dynamic block scheme, W_n^e = twA[e%K]*twB[e/K]
	// with K a power of two so the split is a mask and a shift.
	twA, twB []complex128
	twK      int
	twKShift uint

	demod []complex128 // optional; length n, multiplied into natural-order output

	// lane, when non-nil, runs the 8 column FFTs of a full tile together
	// (lane-interleaved, the paper's outer-loop vectorization); edge tiles
	// and non-smooth n1 fall back to per-column transforms.
	lane *LaneBatch

	sub *SixStep // fine-grain: cooperative plan for single rows of length n2

	work sync.Pool // scratch of length n
	// Per-chunk staging buffers for the fused passes. Pooled so the hot
	// par.For bodies never allocate: a fresh make per chunk costs a page
	// fault per tile and defeats the bandwidth model (soilint:hotalloc).
	tilePool sync.Pool // length tileCols*(n1+rowPad), column pass
	rowPool  sync.Pool // length (n2+rowPad)*tileCols, row pass

	// Kernel backend (kernel.go). BackendSoA runs the split-plane pipeline
	// of soa_sixstep.go; its twiddle planes and plane pools are built
	// lazily under soaOnce.
	backend                    Backend
	soaOnce                    sync.Once
	twARe, twAIm, twBRe, twBIm []float64
	workSoA                    sync.Pool // cvec.SoA of length n
	tileSoAPool                sync.Pool // cvec.SoA planes, column pass slab
	rowSoAPool                 sync.Pool // cvec.SoA planes, row pass buffer
}

// NewSixStep builds a 6-step plan for length n with the given variant.
// workers <= 0 selects GOMAXPROCS. n must be >= 4 and have a nontrivial
// divisor split (every composite n qualifies; primes are rejected — callers
// use a plain Plan for those). The kernel backend is chosen by PickBackend;
// NewSixStepBackend (soa_sixstep.go) accepts an explicit one.
//
//soilint:shape return.n == n
func NewSixStep(n int, variant Variant, workers int) (*SixStep, error) {
	return NewSixStepBackend(n, variant, workers, BackendAuto)
}

// newSixStepAoS builds the plan with its AoS resources; backend selection
// and SoA resources layer on top in NewSixStepBackend.
func newSixStepAoS(n int, variant Variant, workers int) (*SixStep, error) {
	if n < 4 {
		return nil, fmt.Errorf("fft: SixStep length %d too small", n)
	}
	n1 := splitDivisor(n)
	if n1 == 1 || n1 == n {
		return nil, fmt.Errorf("fft: SixStep length %d has no 2D split (prime)", n)
	}
	n2 := n / n1
	p1, err := NewPlan(n1)
	if err != nil {
		return nil, err
	}
	p2, err := NewPlan(n2)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	s := &SixStep{n: n, n1: n1, n2: n2, p1: p1, p2: p2, variant: variant, workers: workers}
	s.work.New = func() any {
		b := make([]complex128, n)
		return &b
	}
	s.tilePool.New = func() any {
		b := make([]complex128, tileCols*(n1+rowPad))
		return &b
	}
	s.rowPool.New = func() any {
		b := make([]complex128, (n2+rowPad)*tileCols)
		return &b
	}
	if variant == SixStepNaive {
		s.twFull = make([]complex128, n)
		for j2 := 0; j2 < n2; j2++ {
			for k1 := 0; k1 < n1; k1++ {
				s.twFull[j2*n1+k1] = twiddle(Forward, j2*k1%n, n)
			}
		}
	} else {
		// Dynamic block scheme (Bailey): W_n^e = W_n^{e mod K} * W_n^{K*(e/K)}
		// with two tables of ~sqrt(n) entries replacing the n-entry table at
		// the cost of one extra multiply per element.
		k := nextPow2(int(math.Ceil(math.Sqrt(float64(n)))))
		s.twK = k
		s.twKShift = uint(bitLen(k) - 1)
		s.twA = twiddleTable(Forward, k, n)
		nb := (n-1)/k + 1
		s.twB = make([]complex128, nb)
		for b := 0; b < nb; b++ {
			s.twB[b] = twiddle(Forward, (b*k)%n, n)
		}
	}
	if variant != SixStepNaive {
		if lb, err := NewLaneBatch(n1, tileCols); err == nil {
			s.lane = lb
		}
	}
	if variant == SixStepFineGrain && n2 >= 64 {
		sub, err := NewSixStep(n2, SixStepOpt, workers)
		if err == nil {
			s.sub = sub
		}
		// n2 prime or too small: fall back to plain rows (sub == nil).
	}
	return s, nil
}

// N returns the transform length.
//
//soilint:shape return == n
func (s *SixStep) N() int { return s.n }

// Split returns the 2D decomposition (n1 rows, n2 columns).
func (s *SixStep) Split() (n1, n2 int) { return s.n1, s.n2 }

// SetDemod installs a demodulation vector d (length n) that is multiplied
// pointwise into the natural-order output. For the optimized variants this
// is fused into the final pass at zero extra sweeps; the naive variant
// applies it as a separate pass, which is exactly the contrast the paper
// draws for the out-of-the-box MKL path on Xeon.
func (s *SixStep) SetDemod(d []complex128) {
	if d != nil && len(d) != s.n {
		panic("fft: SetDemod length mismatch")
	}
	s.demod = d
}

// splitDivisor returns the divisor of n closest to sqrt(n) (preferring the
// smaller side), so both sub-transforms stay near-square.
func splitDivisor(n int) int {
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return best
}

// twiddleOpt returns W_n^{e} from the two small tables; e must be in [0, n).
// K is a power of two, so the index split costs a mask and a shift — one
// integer division here would dominate the whole fused pass (it runs once
// per element).
func (s *SixStep) twiddleOpt(e int) complex128 {
	return s.twA[e&(s.twK-1)] * s.twB[e>>s.twKShift]
}

// Forward computes the unnormalized forward DFT of src into dst (both of
// length n). dst must not alias src.
//
//soilint:shape len(dst) >= n
//soilint:shape len(src) >= n
func (s *SixStep) Forward(dst, src []complex128) {
	if len(dst) < s.n || len(src) < s.n {
		panic("fft: SixStep buffers too short")
	}
	dst, src = dst[:s.n], src[:s.n]
	switch {
	case s.variant == SixStepNaive:
		s.forwardNaive(dst, src)
	case s.backend == BackendSoA:
		// Split-plane pipeline; AoS<->SoA conversion rides the staging
		// sweeps the pass performs anyway (soa_sixstep.go).
		s.forwardOptSoA(vec{aos: dst}, vec{aos: src})
	default:
		s.forwardOpt(dst, src)
	}
}

// forwardNaive is Fig. 4a: every step is a separate full pass.
func (s *SixStep) forwardNaive(dst, src []complex128) {
	n1, n2 := s.n1, s.n2
	t1p := s.work.Get().(*[]complex128)
	t2p := s.work.Get().(*[]complex128)
	defer s.work.Put(t1p)
	defer s.work.Put(t2p)
	t1, t2 := *t1p, *t2p

	// 1: transpose n1 x n2 -> n2 x n1.
	cvec.Transpose(t1, src, n1, n2)
	// 2: n2 independent n1-point FFTs on contiguous rows.
	par.For(s.workers, n2, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row := t1[r*n1 : (r+1)*n1]
			s.p1.Forward(row, row)
		}
	})
	// 3: twiddle multiplication (separate pass, full-size table: 2 loads +
	// 1 store per element, as the paper counts).
	par.For(s.workers, n2, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row := t1[r*n1 : (r+1)*n1]
			tw := s.twFull[r*n1 : (r+1)*n1]
			for i := range row {
				row[i] *= tw[i]
			}
		}
	})
	// 4: transpose n2 x n1 -> n1 x n2.
	cvec.Transpose(t2, t1, n2, n1)
	// 5: n1 independent n2-point FFTs.
	par.For(s.workers, n1, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row := t2[r*n2 : (r+1)*n2]
			s.p2.Forward(row, row)
		}
	})
	// 6: transpose n1 x n2 -> n2 x n1 = natural order output.
	cvec.Transpose(dst, t2, n1, n2)
	// Demodulation as a separate stage: 3 more sweeps, like the
	// out-of-the-box library path described in Section 6.1.
	if s.demod != nil {
		par.For(s.workers, s.n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dst[i] *= s.demod[i]
			}
		})
	}
}

// forwardOpt is Fig. 4b (plus the pipelined / fine-grain refinements):
// steps 1-4 fused into one tile pass, steps 5-6 (and demodulation) fused
// into a second: 4 memory sweeps total.
func (s *SixStep) forwardOpt(dst, src []complex128) {
	wp := s.work.Get().(*[]complex128)
	defer s.work.Put(wp)
	w := *wp

	ntiles := (s.n2 + tileCols - 1) / tileCols
	if s.variant == SixStepOpt {
		par.ForChunked(s.workers, ntiles, 8, func(lo, hi int) {
			bp := s.tilePool.Get().(*[]complex128)
			defer s.tilePool.Put(bp)
			for t := lo; t < hi; t++ {
				s.columnTile(w, src, t, *bp)
			}
		})
	} else {
		s.columnPassPipelined(w, src, ntiles)
	}

	if s.variant == SixStepFineGrain && s.sub != nil {
		s.rowPassFineGrain(dst, w)
		return
	}
	// Row pass: 8 rows per chunk ("loop_b over P rows, 8 rows at a time")
	// so the permuted writeback emits full cache lines (8 consecutive k1
	// values share each k2 line of dst).
	par.ForChunked(s.workers, s.n1, tileCols, func(lo, hi int) {
		rp := s.rowPool.Get().(*[]complex128)
		defer s.rowPool.Put(rp)
		s.rowGroupFFTScatter(dst, w, lo, hi, *rp)
	})
}

// columnTile processes one tile of tileCols columns with steps 1-4 fused:
// gather, n1-point FFTs, small-table twiddles, scatter to the transposed
// position in w. Main-memory accesses touch full cache lines (the tile is 8
// columns = 128 bytes wide), and the staging slab is PADDED between columns
// — the paper's "contiguous buffer is padded to avoid cache conflict
// misses". Without the padding, a power-of-two n1 makes the 8 slab columns
// alias into one L1 set and the gather thrashes.
// buf, when non-nil, must have length tileCols*(n1+rowPad) and is reused.
func (s *SixStep) columnTile(w, src []complex128, tile int, buf []complex128) {
	if buf == nil {
		buf = make([]complex128, tileCols*(s.n1+rowPad))
	}
	s.gatherTile(buf, src, tile)
	s.processTile(w, buf, tile)
}

// useLane reports whether the tile runs through the lane-interleaved batch
// kernel (full-width tiles with a smooth n1).
func (s *SixStep) useLane(cols int) bool { return s.lane != nil && cols == tileCols }

// gatherTile stages one tile of columns from src into buf. With the lane
// kernel the slab is row-major (pure 128-byte copies); otherwise it is a
// padded column-major slab (the padding is the paper's "contiguous buffer
// is padded to avoid cache conflict misses" — without it a power-of-two n1
// makes the 8 slab columns alias into one L1 set).
func (s *SixStep) gatherTile(buf, src []complex128, tile int) {
	n1, n2 := s.n1, s.n2
	j2lo := tile * tileCols
	cols := min(tileCols, n2-j2lo)
	if s.useLane(cols) {
		for j1 := 0; j1 < n1; j1++ {
			copy(buf[j1*tileCols:j1*tileCols+tileCols], src[j1*n2+j2lo:j1*n2+j2lo+tileCols])
		}
		return
	}
	stride := n1 + rowPad
	for j1 := 0; j1 < n1; j1++ {
		srow := src[j1*n2+j2lo : j1*n2+j2lo+cols]
		for c, v := range srow {
			buf[c*stride+j1] = v
		}
	}
}

// processTile runs the tile's n1-point FFTs, applies the stage twiddles
// (incremental exponent — one 64-bit division per row, not per element) and
// scatters the transposed rows into w with 8-wide contiguous writes.
func (s *SixStep) processTile(w, buf []complex128, tile int) {
	n1, n2 := s.n1, s.n2
	j2lo := tile * tileCols
	cols := min(tileCols, n2-j2lo)
	if s.useLane(cols) {
		// All 8 column FFTs together, lane-interleaved (outer-loop
		// vectorization); the slab stays row-major throughout.
		s.lane.Forward(buf[:n1*tileCols])
		for k1 := 0; k1 < n1; k1++ {
			row := buf[k1*tileCols : k1*tileCols+tileCols]
			out := w[k1*n2+j2lo:]
			e := j2lo * k1 % s.n
			for c := 0; c < tileCols; c++ {
				out[c] = row[c] * s.twiddleOpt(e)
				e += k1
				if e >= s.n {
					e -= s.n
				}
			}
		}
		return
	}
	stride := n1 + rowPad
	for c := 0; c < cols; c++ {
		col := buf[c*stride : c*stride+n1]
		s.p1.Forward(col, col)
	}
	for k1 := 0; k1 < n1; k1++ {
		out := w[k1*n2+j2lo:]
		e := j2lo * k1 % s.n
		for c := 0; c < cols; c++ {
			out[c] = buf[c*stride+k1] * s.twiddleOpt(e)
			e += k1
			if e >= s.n {
				e -= s.n
			}
		}
	}
}

// rowGroupFFTScatter runs the n2-point FFTs of rows [lo, hi) of w (hi-lo <=
// tileCols) and writes the outputs to dst in natural order, fusing the
// demodulation multiply when present (steps 5+6 fused, "Saving Bandwidth by
// Fusing Demodulation and FFT"). Writing all rows of a group per k2 makes
// the stride-n1 permutation emit hi-lo consecutive elements at a time.
// rbuf must have length >= n2*(hi-lo).
func (s *SixStep) rowGroupFFTScatter(dst, w []complex128, lo, hi int, rbuf []complex128) {
	n1, n2 := s.n1, s.n2
	rows := hi - lo
	// The buffer rows are padded by rowPad elements so that reading column
	// k2 across the group does not alias into a single cache set when n2
	// is a power of two (the "buffer is padded to avoid cache conflict
	// misses" of Section 5.2.3).
	stride := n2 + rowPad
	for r := 0; r < rows; r++ {
		s.p2.Forward(rbuf[r*stride:r*stride+n2], w[(lo+r)*n2:(lo+r+1)*n2])
	}
	if s.demod != nil {
		for k2 := 0; k2 < n2; k2++ {
			base := lo + n1*k2
			for r := 0; r < rows; r++ {
				dst[base+r] = rbuf[r*stride+k2] * s.demod[base+r]
			}
		}
		return
	}
	for k2 := 0; k2 < n2; k2++ {
		base := lo + n1*k2
		for r := 0; r < rows; r++ {
			dst[base+r] = rbuf[r*stride+k2]
		}
	}
}

// rowPad is the padding (in elements) between staged rows; one cache line
// pair keeps group-column reads spread across sets.
const rowPad = 8

// columnPassPipelined splits the workers into a loader team and a compute
// team connected by a channel of staged tiles, emulating the SMT
// load/FFT/store pipeline of Fig. 5: while one team copies tile i+1 out of
// main memory, the other runs the in-cache FFT+twiddle of tile i.
func (s *SixStep) columnPassPipelined(w, src []complex128, ntiles int) {
	loaders := max(1, s.workers/2)
	workers := max(1, s.workers-loaders)
	type staged struct {
		tile int
		buf  []complex128
	}
	// Prime the pipeline from the tile pool: after the first transform the
	// staging buffers are warm and no allocation happens per call.
	free := make(chan []complex128, loaders+workers+2)
	pooled := make([]*[]complex128, cap(free))
	for i := range pooled {
		//soilint:pool transfer headers are parked in pooled and returned after both teams drain
		pooled[i] = s.tilePool.Get().(*[]complex128)
		free <- *pooled[i]
	}
	ready := make(chan staged, cap(free))

	var loadWG sync.WaitGroup
	loadWG.Add(loaders)
	next := make(chan int, ntiles)
	for t := 0; t < ntiles; t++ {
		next <- t
	}
	close(next)
	for l := 0; l < loaders; l++ {
		//soilint:ignore goleak bounded: next is closed and pre-filled, and every buffer taken from free is returned to it by the compute team, which keeps draining ready while any loader runs
		go func() {
			defer loadWG.Done()
			for t := range next {
				buf := <-free
				s.gatherTile(buf, src, t)
				ready <- staged{tile: t, buf: buf}
			}
		}()
	}
	//soilint:ignore goleak loadWG.Wait is bounded: each loader exits after draining the closed next channel
	go func() {
		loadWG.Wait()
		close(ready)
	}()

	var compWG sync.WaitGroup
	compWG.Add(workers)
	for c := 0; c < workers; c++ {
		go func() {
			defer compWG.Done()
			for st := range ready {
				s.processTile(w, st.buf, st.tile)
				free <- st.buf
			}
		}()
	}
	compWG.Wait()
	// Both teams have drained, so every backing array is idle again; the
	// headers in pooled still reference them all. Return them for the next
	// transform.
	for _, bp := range pooled {
		//soilint:pool transfer returning the headers acquired during pipeline priming above
		s.tilePool.Put(bp)
	}
}

// rowPassFineGrain processes rows sequentially but lets every worker
// cooperate on each single n2-point FFT through a nested 2D decomposition,
// so the per-FFT working set stays tile-sized instead of n2-sized — the
// paper's answer to a 32K-point FFT overflowing a 512 KB private L2.
func (s *SixStep) rowPassFineGrain(dst, w []complex128) {
	n1, n2 := s.n1, s.n2
	rbuf := make([]complex128, n2)
	for k1 := 0; k1 < n1; k1++ {
		row := w[k1*n2 : (k1+1)*n2]
		s.sub.Forward(rbuf, row) // internally parallel across all workers
		if s.demod != nil {
			for k2 := 0; k2 < n2; k2++ {
				idx := k1 + n1*k2
				dst[idx] = rbuf[k2] * s.demod[idx]
			}
		} else {
			for k2 := 0; k2 < n2; k2++ {
				dst[k1+n1*k2] = rbuf[k2]
			}
		}
	}
}
