package fft

import (
	"testing"

	"soifft/internal/cvec"
	"soifft/internal/ref"
)

// SixStep correctness against the reference DFT and the plain Plan lives in
// the kernel-oracle suite (oracle_test.go), which covers every variant and
// both kernel backends at smooth, rough and Fig. 11 sizes. The tests below
// cover the features the oracle table doesn't parameterize: demod fusion,
// argument validation and variant metadata.

func TestSixStepDemodFusion(t *testing.T) {
	n := 2048
	x := ref.RandomVector(n, 5)
	d := ref.RandomVector(n, 6)
	want := make([]complex128, n)
	MustPlan(n).Forward(want, x)
	for i := range want {
		want[i] *= d[i]
	}
	for _, variant := range AllVariants {
		s, err := NewSixStep(n, variant, 3)
		if err != nil {
			t.Fatal(err)
		}
		s.SetDemod(d)
		got := make([]complex128, n)
		s.Forward(got, x)
		if e := cvec.RelErrL2(got, want); e > 1e-11 {
			t.Errorf("%v: fused demod error %g", variant, e)
		}
	}
}

func TestSixStepRejectsPrime(t *testing.T) {
	if _, err := NewSixStep(31, SixStepOpt, 1); err == nil {
		t.Fatal("expected error for prime length")
	}
	if _, err := NewSixStep(2, SixStepOpt, 1); err == nil {
		t.Fatal("expected error for tiny length")
	}
}

func TestSixStepSplit(t *testing.T) {
	s, err := NewSixStep(1<<12, SixStepOpt, 1)
	if err != nil {
		t.Fatal(err)
	}
	n1, n2 := s.Split()
	if n1*n2 != 1<<12 || n1 != 64 || n2 != 64 {
		t.Fatalf("split = %d x %d", n1, n2)
	}
	if s.N() != 1<<12 {
		t.Fatalf("N = %d", s.N())
	}
}

func TestVariantMetadata(t *testing.T) {
	if SixStepNaive.MemorySweeps() != 13 {
		t.Errorf("naive sweeps = %d, want 13 (Fig 4a)", SixStepNaive.MemorySweeps())
	}
	for _, v := range []Variant{SixStepOpt, SixStepPipelined, SixStepFineGrain} {
		if v.MemorySweeps() != 4 {
			t.Errorf("%v sweeps = %d, want 4 (Fig 4b)", v, v.MemorySweeps())
		}
	}
	names := map[Variant]string{
		SixStepNaive:     "6-step-naive",
		SixStepOpt:       "6-step-opt",
		SixStepPipelined: "latency-hiding",
		SixStepFineGrain: "fine-grain",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("%d.String() = %q want %q", int(v), v.String(), want)
		}
	}
}

func TestBatchTransform(t *testing.T) {
	const n, count = 64, 10
	b, err := NewBatch(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	src := ref.RandomVector(n*count, 11)
	dst := make([]complex128, n*count)
	b.Transform(dst, src, count, n, Forward)
	for i := 0; i < count; i++ {
		want := ref.DFT(src[i*n : (i+1)*n])
		if e := cvec.RelErrL2(dst[i*n:(i+1)*n], want); e > 1e-12 {
			t.Errorf("batch %d: error %g", i, e)
		}
	}
	// Round trip through Inverse restores the input.
	back := make([]complex128, n*count)
	b.Transform(back, dst, count, n, Inverse)
	if e := cvec.RelErrL2(back, src); e > 1e-12 {
		t.Errorf("batch round-trip error %g", e)
	}
}

func TestBatchStrided(t *testing.T) {
	const n, count = 32, 6
	b, err := NewBatch(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := ref.RandomVector(n*count, 13)
	dst := make([]complex128, n*count)
	b.TransformStrided(dst, src, count, Forward)
	for i := 0; i < count; i++ {
		col := make([]complex128, n)
		cvec.GatherStride(col, src, i, count)
		want := ref.DFT(col)
		got := make([]complex128, n)
		cvec.GatherStride(got, dst, i, count)
		if e := cvec.RelErrL2(got, want); e > 1e-12 {
			t.Errorf("strided batch %d: error %g", i, e)
		}
	}
}

func TestBatchPanicsOnBadArgs(t *testing.T) {
	b, _ := NewBatch(8, 1)
	for _, fn := range []func(){
		func() { b.Transform(make([]complex128, 16), make([]complex128, 16), 2, 4, Forward) }, // dist < n
		func() { b.Transform(make([]complex128, 8), make([]complex128, 16), 2, 8, Forward) },  // dst short
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
