package fft

import (
	"fmt"
	"sync"
)

// LaneBatch performs `lanes` independent length-n transforms stored
// lane-interleaved: element j of transform l lives at x[j*lanes + l].
//
// This is the paper's outer-loop vectorization ("Step 2 performs ffts in
// strides of P. We vectorize this step by performing vector-width (i.e., 8)
// independent ffts", Section 5.2.4): every butterfly's innermost loop walks
// the lanes contiguously, so the compiler sees long unit-stride runs of
// identical arithmetic. The implementation insight is that the
// lane-interleaved batch is *exactly* the Stockham schedule with the
// initial stride set to `lanes` instead of 1 — the combined (q, lane) inner
// index is contiguous — so the scalar stage kernels are reused unchanged.
type LaneBatch struct {
	n, lanes int
	stages   []stage
	work     sync.Pool
	soa      soaState // lazy SoA resources (soa_lane.go)
}

// NewLaneBatch builds a batch plan for `lanes` interleaved transforms of
// length n. n must be smooth (no prime factor above maxGenericRadix);
// callers with rough sizes should use separate Plan transforms.
func NewLaneBatch(n, lanes int) (*LaneBatch, error) {
	if n < 1 || lanes < 1 {
		return nil, fmt.Errorf("fft: invalid LaneBatch %d x %d", n, lanes)
	}
	// The accumulated stride starts at `lanes`, so the alias-avoidance
	// schedule must see it too: a lane batch reaches page-aliasing strides
	// `lanes` times sooner than a scalar plan of the same length.
	radices, smooth := factorize(n, lanes)
	if !smooth {
		return nil, fmt.Errorf("fft: LaneBatch length %d has a large prime factor", n)
	}
	lb := &LaneBatch{n: n, lanes: lanes}
	lb.work.New = func() any {
		b := make([]complex128, n*lanes)
		return &b
	}
	if n == 1 {
		return lb, nil
	}
	// Standard schedule, but the accumulated stride starts at `lanes`.
	lb.stages = buildStages(n, radices)
	for i := range lb.stages {
		lb.stages[i].s *= lanes
	}
	return lb, nil
}

// N returns the per-transform length; Lanes the batch width.
func (lb *LaneBatch) N() int     { return lb.n }
func (lb *LaneBatch) Lanes() int { return lb.lanes }

// Transform runs all lanes in place on x (length >= n*lanes).
func (lb *LaneBatch) Transform(x []complex128, dir Direction) {
	total := lb.n * lb.lanes
	if len(x) < total {
		panic(fmt.Sprintf("fft: LaneBatch buffer %d < %d", len(x), total))
	}
	x = x[:total]
	if lb.n == 1 {
		return // length-1 transforms are the identity in both directions
	}
	wp := lb.work.Get().(*[]complex128)
	defer lb.work.Put(wp)
	w := (*wp)[:total]

	a, b := x, w
	if len(lb.stages)%2 != 0 {
		a, b = w, x
	}
	if dir == Forward {
		if &a[0] != &x[0] {
			copy(a, x)
		}
	} else {
		// Conjugation identity; the final conjugate+scale happens below.
		for i, v := range x {
			a[i] = complex(real(v), -imag(v))
		}
	}
	for i := range lb.stages {
		runStage(&lb.stages[i], b, a)
		a, b = b, a
	}
	// Result is in x now.
	if dir == Inverse {
		inv := 1 / float64(lb.n)
		for i, v := range x {
			x[i] = complex(real(v)*inv, -imag(v)*inv)
		}
	}
}

// Forward runs all lanes forward, in place.
func (lb *LaneBatch) Forward(x []complex128) { lb.Transform(x, Forward) }

// Inverse runs all lanes inverse (1/n scaled), in place.
func (lb *LaneBatch) Inverse(x []complex128) { lb.Transform(x, Inverse) }
