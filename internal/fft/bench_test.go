package fft

import (
	"fmt"
	"testing"

	"soifft/internal/ref"
)

func benchTransform(b *testing.B, n int) {
	p := MustPlan(n)
	x := ref.RandomVector(n, 1)
	dst := make([]complex128, n)
	b.SetBytes(int64(n) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(dst, x)
	}
	b.ReportMetric(5*float64(n)*log2(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func log2(n int) float64 {
	l := 0.0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

func BenchmarkPlanPow2(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchTransform(b, n) })
	}
}

func BenchmarkPlanMixedRadix(b *testing.B) {
	// The SOI-relevant shapes: factors of 7 (mu = 8/7 lengths) and 5.
	for _, n := range []int{7 * 1024, 5 * 4096, 3 * 3 * 5 * 7 * 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchTransform(b, n) })
	}
}

func BenchmarkPlanBluestein(b *testing.B) {
	for _, n := range []int{1009, 65537} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchTransform(b, n) })
	}
}

func BenchmarkSixStepVariants(b *testing.B) {
	const n = 1 << 16
	x := ref.RandomVector(n, 2)
	dst := make([]complex128, n)
	for _, v := range AllVariants {
		b.Run(v.String(), func(b *testing.B) {
			s, err := NewSixStep(n, v, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(n) * 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Forward(dst, x)
			}
		})
	}
}

func BenchmarkBatchSmallFFTs(b *testing.B) {
	// The I_M' (x) F_P stage shape: many tiny transforms.
	const p, count = 64, 4096
	for _, workers := range []int{1, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			batch, err := NewBatch(p, workers)
			if err != nil {
				b.Fatal(err)
			}
			x := ref.RandomVector(p*count, 3)
			dst := make([]complex128, p*count)
			b.SetBytes(int64(p*count) * 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch.Transform(dst, x, count, p, Forward)
			}
		})
	}
}

func BenchmarkTwiddleSchemes(b *testing.B) {
	// Full-table vs dynamic-block twiddle access (the trade Section 5.2.2
	// calls the "dynamic block scheme").
	s, err := NewSixStep(1<<16, SixStepOpt, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("dynamic-block", func(b *testing.B) {
		var acc complex128
		for i := 0; i < b.N; i++ {
			acc += s.twiddleOpt(i % s.n)
		}
		_ = acc
	})
	naive, err := NewSixStep(1<<16, SixStepNaive, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("full-table", func(b *testing.B) {
		var acc complex128
		for i := 0; i < b.N; i++ {
			acc += naive.twFull[i%naive.n]
		}
		_ = acc
	})
}
