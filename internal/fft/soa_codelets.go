package fft

import "math"

// Split-plane codelets: the SoA twins of codelets.go, used by the SoA plan
// path for the hot tiny sizes (n = 4, 8, 16). Same algebra, same operation
// order, expanded to float64 streams; like their AoS twins they read every
// input before the first write, so dst may alias src plane-wise.

// dft4SoA computes the forward 4-point DFT on planes.
func dft4SoA(dre, dim, sre, sim []float64) {
	u0r, u0i := sre[0], sim[0]
	u1r, u1i := sre[1], sim[1]
	u2r, u2i := sre[2], sim[2]
	u3r, u3i := sre[3], sim[3]
	ar, ai := u0r+u2r, u0i+u2i
	cr, ci := u0r-u2r, u0i-u2i
	br, bi := u1r+u3r, u1i+u3i
	dr, di := u1r-u3r, u1i-u3i
	// id = i*d = (-di, dr)
	dre[0], dim[0] = ar+br, ai+bi
	dre[1], dim[1] = cr+di, ci-dr
	dre[2], dim[2] = ar-br, ai-bi
	dre[3], dim[3] = cr-di, ci+dr
}

// dft8SoA computes the forward 8-point DFT on planes (radix-2 split into
// two 4-point DFTs, as in dft8).
func dft8SoA(dre, dim, sre, sim []float64) {
	u0r, u0i := sre[0], sim[0]
	u1r, u1i := sre[1], sim[1]
	u2r, u2i := sre[2], sim[2]
	u3r, u3i := sre[3], sim[3]
	u4r, u4i := sre[4], sim[4]
	u5r, u5i := sre[5], sim[5]
	u6r, u6i := sre[6], sim[6]
	u7r, u7i := sre[7], sim[7]

	a0r, a0i := u0r+u4r, u0i+u4i
	a1r, a1i := u1r+u5r, u1i+u5i
	a2r, a2i := u2r+u6r, u2i+u6i
	a3r, a3i := u3r+u7r, u3i+u7i
	b0r, b0i := u0r-u4r, u0i-u4i
	b1r, b1i := u1r-u5r, u1i-u5i
	b2r, b2i := u2r-u6r, u2i-u6i
	b3r, b3i := u3r-u7r, u3i-u7i
	c := invSqrt2
	b1r, b1i = c*(b1r+b1i), c*(b1i-b1r)
	b2r, b2i = b2i, -b2r
	b3r, b3i = c*(b3i-b3r), -c*(b3r+b3i)

	{
		ar, ai := a0r+a2r, a0i+a2i
		cr, ci := a0r-a2r, a0i-a2i
		br, bi := a1r+a3r, a1i+a3i
		dr, di := a1r-a3r, a1i-a3i
		dre[0], dim[0] = ar+br, ai+bi
		dre[2], dim[2] = cr+di, ci-dr
		dre[4], dim[4] = ar-br, ai-bi
		dre[6], dim[6] = cr-di, ci+dr
	}
	{
		ar, ai := b0r+b2r, b0i+b2i
		cr, ci := b0r-b2r, b0i-b2i
		br, bi := b1r+b3r, b1i+b3i
		dr, di := b1r-b3r, b1i-b3i
		dre[1], dim[1] = ar+br, ai+bi
		dre[3], dim[3] = cr+di, ci-dr
		dre[5], dim[5] = ar-br, ai-bi
		dre[7], dim[7] = cr-di, ci+dr
	}
}

// w16SoA holds w16 split into planes, index-compatible with w16.
var w16SoA = func() (t struct{ re, im [4]float64 }) {
	for k, w := range w16 {
		t.re[k], t.im[k] = real(w), imag(w)
	}
	return
}()

// dft16SoA computes the forward 16-point DFT on planes (radix-2 split into
// two 8-point DFTs, as in dft16).
func dft16SoA(dre, dim, sre, sim []float64) {
	var ar, ai, br, bi [8]float64
	for k := 0; k < 8; k++ {
		ur, ui := sre[k], sim[k]
		vr, vi := sre[k+8], sim[k+8]
		ar[k], ai[k] = ur+vr, ui+vi
		dr, di := ur-vr, ui-vi
		if k < 4 {
			wr, wi := w16SoA.re[k], w16SoA.im[k]
			br[k] = dr*wr - di*wi
			bi[k] = dr*wi + di*wr
		} else {
			// W16^{k} = -i * W16^{k-4}: multiply then rotate by -i.
			wr, wi := w16SoA.re[k-4], w16SoA.im[k-4]
			tr := dr*wr - di*wi
			ti := dr*wi + di*wr
			br[k], bi[k] = ti, -tr
		}
	}
	var ear, eai, ebr, ebi [8]float64
	dft8SoA(ear[:], eai[:], ar[:], ai[:])
	dft8SoA(ebr[:], ebi[:], br[:], bi[:])
	for k := 0; k < 8; k++ {
		dre[2*k], dim[2*k] = ear[k], eai[k]
		dre[2*k+1], dim[2*k+1] = ebr[k], ebi[k]
	}
}

// codeletForwardSoA dispatches to an unrolled SoA transform when one exists.
func codeletForwardSoA(dre, dim, sre, sim []float64, n int) bool {
	switch n {
	case 4:
		dft4SoA(dre, dim, sre, sim)
	case 8:
		dft8SoA(dre, dim, sre, sim)
	case 16:
		dft16SoA(dre, dim, sre, sim)
	default:
		return false
	}
	return true
}

// guard against drift between the two constant tables.
var _ = func() bool {
	for k := range w16 {
		if math.Float64bits(real(w16[k])) != math.Float64bits(w16SoA.re[k]) {
			panic("fft: w16SoA out of sync with w16")
		}
	}
	return true
}()
