package fft

import (
	"testing"

	"soifft/internal/cvec"
	"soifft/internal/ref"
)

func TestLaneBatchMatchesSeparateTransforms(t *testing.T) {
	for _, n := range []int{1, 4, 8, 12, 64, 7 * 32, 1024} {
		for _, lanes := range []int{1, 3, 8} {
			lb, err := NewLaneBatch(n, lanes)
			if err != nil {
				t.Fatalf("n=%d lanes=%d: %v", n, lanes, err)
			}
			// Interleave `lanes` random transforms.
			src := make([][]complex128, lanes)
			for l := range src {
				src[l] = ref.RandomVector(n, int64(n*lanes+l))
			}
			x := make([]complex128, n*lanes)
			for j := 0; j < n; j++ {
				for l := 0; l < lanes; l++ {
					x[j*lanes+l] = src[l][j]
				}
			}
			lb.Forward(x)
			p := MustPlan(n)
			for l := 0; l < lanes; l++ {
				want := make([]complex128, n)
				p.Forward(want, src[l])
				got := make([]complex128, n)
				cvec.GatherStride(got, x, l, lanes)
				if e := cvec.RelErrL2(got, want); e > 1e-13 {
					t.Errorf("n=%d lanes=%d lane %d: error %g", n, lanes, l, e)
				}
			}
		}
	}
}

func TestLaneBatchInverseRoundTrip(t *testing.T) {
	lb, err := NewLaneBatch(96, 8)
	if err != nil {
		t.Fatal(err)
	}
	x := ref.RandomVector(96*8, 9)
	orig := append([]complex128(nil), x...)
	lb.Forward(x)
	lb.Inverse(x)
	if e := cvec.RelErrL2(x, orig); e > 1e-13 {
		t.Errorf("lane round trip error %g", e)
	}
}

func TestLaneBatchRejectsRoughLengths(t *testing.T) {
	if _, err := NewLaneBatch(17, 8); err == nil {
		t.Error("prime 17 accepted")
	}
	if _, err := NewLaneBatch(0, 8); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewLaneBatch(8, 0); err == nil {
		t.Error("lanes=0 accepted")
	}
}

func BenchmarkLaneBatchVsSeparate(b *testing.B) {
	const n, lanes = 1024, 8
	lb, err := NewLaneBatch(n, lanes)
	if err != nil {
		b.Fatal(err)
	}
	x := ref.RandomVector(n*lanes, 1)
	b.Run("lane-interleaved", func(b *testing.B) {
		buf := append([]complex128(nil), x...)
		b.SetBytes(int64(n*lanes) * 16)
		for i := 0; i < b.N; i++ {
			lb.Forward(buf)
		}
	})
	b.Run("separate-calls", func(b *testing.B) {
		p := MustPlan(n)
		buf := append([]complex128(nil), x...)
		b.SetBytes(int64(n*lanes) * 16)
		for i := 0; i < b.N; i++ {
			for l := 0; l < lanes; l++ {
				p.Forward(buf[l*n:(l+1)*n], buf[l*n:(l+1)*n])
			}
		}
	})
}
