package fft

import (
	"fmt"
	"sync"

	"soifft/internal/cvec"
)

// Split-plane (SoA) execution path for Plan. The layout follows the call:
// Transform runs the AoS kernels, TransformSoA runs the SoA kernels over
// cvec.SoA planes — neither converts behind the caller's back. The one
// exception is the Bluestein fallback for rough lengths, which is AoS-only;
// TransformSoA documents that case as a pooled conversion round trip.

// soaState holds the lazily-built SoA resources of a Plan: split twiddle
// planes on every stage plus a scratch-plane pool for the ping-pong buffer.
type soaState struct {
	once sync.Once
	work sync.Pool
}

func (p *Plan) ensureSoA() {
	p.soa.once.Do(func() {
		ensureSoAStages(p.stages)
		n := p.n
		p.soa.work.New = func() any {
			s := cvec.NewSoA(n)
			return &s
		}
	})
}

func (p *Plan) getWorkSoA() cvec.SoA {
	return *(p.soa.work.Get().(*cvec.SoA))
}

func (p *Plan) putWorkSoA(s cvec.SoA) {
	p.soa.work.Put(&s)
}

// TransformSoA computes the DFT of src into dst on split planes. Both
// vectors must have length >= p.N(); dst may alias src plane-wise. Forward
// is unnormalized; Inverse applies the 1/n scaling — the same contract as
// Transform. Smooth lengths run entirely on planes; rough (Bluestein)
// lengths convert through a pooled AoS scratch pair, which costs two extra
// sweeps and is the documented fallback, not a fast path.
//
//soilint:shape len(dst.Re) >= n
//soilint:shape len(src.Re) >= n
func (p *Plan) TransformSoA(dst, src cvec.SoA, dir Direction) {
	n := p.n
	if dst.Len() < n || src.Len() < n {
		panic(fmt.Sprintf("fft: TransformSoA buffers too short: dst=%d src=%d n=%d", dst.Len(), src.Len(), n))
	}
	dst, src = dst.Slice(0, n), src.Slice(0, n)
	switch {
	case n == 1:
		dst.Re[0], dst.Im[0] = src.Re[0], src.Im[0]
	case n == 2:
		ar, ai := src.Re[0], src.Im[0]
		br, bi := src.Re[1], src.Im[1]
		s := 1.0
		if dir == Inverse {
			s = 0.5
		}
		dst.Re[0], dst.Im[0] = (ar+br)*s, (ai+bi)*s
		dst.Re[1], dst.Im[1] = (ar-br)*s, (ai-bi)*s
	case n == 4 || n == 8 || n == 16:
		if dir == Forward {
			codeletForwardSoA(dst.Re, dst.Im, src.Re, src.Im, n)
			return
		}
		// Inverse via the conjugation identity, as in Transform.
		var tr, ti [16]float64
		for i := 0; i < n; i++ {
			tr[i] = src.Re[i]
			ti[i] = -src.Im[i]
		}
		codeletForwardSoA(dst.Re, dst.Im, tr[:n], ti[:n], n)
		inv := 1 / float64(n)
		for i := 0; i < n; i++ {
			dst.Re[i] *= inv
			dst.Im[i] = -dst.Im[i] * inv
		}
	case p.blue != nil:
		// Bluestein is AoS-only: round trip through pooled complex scratch.
		a := p.getWork()
		b := p.getWork()
		src.CopyToComplex(a[:n])
		p.blue.transform(b[:n], a[:n], dir)
		cvec.FromComplexInto(dst, b[:n])
		p.putWork(b)
		p.putWork(a)
	default:
		p.stockhamSoA(dst, src, dir)
	}
}

// ForwardSoA computes the unnormalized forward DFT on planes.
//
//soilint:shape len(dst.Re) >= n
//soilint:shape len(src.Re) >= n
func (p *Plan) ForwardSoA(dst, src cvec.SoA) { p.TransformSoA(dst, src, Forward) }

// InverseSoA computes the normalized (1/n) inverse DFT on planes.
//
//soilint:shape len(dst.Re) >= n
//soilint:shape len(src.Re) >= n
func (p *Plan) InverseSoA(dst, src cvec.SoA) { p.TransformSoA(dst, src, Inverse) }

// stockhamSoA is stockham with the ping-pong pair on planes: same parity
// trick (the last pass lands in dst with no final copy), same conjugation
// identity for the inverse.
func (p *Plan) stockhamSoA(dst, src cvec.SoA, dir Direction) {
	p.ensureSoA()
	w := p.getWorkSoA()
	defer p.putWorkSoA(w)

	a, b := dst, w
	if len(p.stages)%2 != 0 {
		a, b = w, dst
	}
	if dir == Forward {
		src.CopyTo(a)
	} else {
		copy(a.Re, src.Re)
		for i, v := range src.Im {
			a.Im[i] = -v
		}
	}
	for i := range p.stages {
		runStageSoA(&p.stages[i], b, a)
		a, b = b, a
	}
	if dir == Inverse {
		inv := 1 / float64(p.n)
		for i := range dst.Re {
			dst.Re[i] *= inv
		}
		for i := range dst.Im {
			dst.Im[i] = -dst.Im[i] * inv
		}
	}
}
