package fft

import (
	"fmt"
	"math"
)

// bluestein implements the chirp-z transform: an arbitrary-length DFT
// expressed as one circular convolution of power-of-two length m >= 2n-1.
// It is the fallback for lengths whose largest prime factor exceeds
// maxGenericRadix, which keeps Plan total work at O(n log n) for every n —
// needed because SOI produces local FFT lengths like M' = mu*M that are not
// always smooth.
type bluestein struct {
	n, m  int
	chirp []complex128 // chirp[j] = exp(-pi*i*j^2/n), j in [0,n)
	fb    []complex128 // forward FFT of the wrapped conjugate chirp, length m
	sub   *Plan        // power-of-two convolution plan
}

func newBluestein(n int) (*bluestein, error) {
	if n < 2 {
		return nil, fmt.Errorf("fft: bluestein length %d too small", n)
	}
	m := nextPow2(2*n - 1)
	b := &bluestein{n: n, m: m}
	sub, err := NewPlan(m)
	if err != nil {
		return nil, err
	}
	b.sub = sub

	// chirp[j] = exp(-pi*i * j^2 / n). j^2 is reduced mod 2n in integer
	// arithmetic before the float conversion so the sin/cos argument stays
	// small even for j near n (j^2 would otherwise lose low-order bits for
	// large transforms, destroying the cancellation the algorithm relies on).
	b.chirp = make([]complex128, n)
	twoN := uint64(2 * n)
	for j := 0; j < n; j++ {
		jj := (uint64(j) * uint64(j)) % twoN
		b.chirp[j] = expi(-math.Pi * float64(jj) / float64(n))
	}

	// bb[j] = conj(chirp[|j|]) wrapped circularly into [0, m).
	bb := make([]complex128, m)
	for j := 0; j < n; j++ {
		c := b.chirp[j]
		cc := complex(real(c), -imag(c))
		bb[j] = cc
		if j > 0 {
			bb[m-j] = cc
		}
	}
	b.fb = make([]complex128, m)
	b.sub.Forward(b.fb, bb)
	return b, nil
}

// transform computes dst = DFT_dir(src) for the rough length n.
// The inverse direction is the conjugation identity applied around the
// forward chirp machinery.
func (b *bluestein) transform(dst, src []complex128, dir Direction) {
	n, m := b.n, b.m
	a := make([]complex128, m)
	if dir == Forward {
		for j := 0; j < n; j++ {
			a[j] = src[j] * b.chirp[j]
		}
	} else {
		for j := 0; j < n; j++ {
			v := src[j]
			a[j] = complex(real(v), -imag(v)) * b.chirp[j]
		}
	}
	b.sub.Forward(a, a)
	for j := 0; j < m; j++ {
		a[j] *= b.fb[j]
	}
	b.sub.Inverse(a, a)
	if dir == Forward {
		for k := 0; k < n; k++ {
			dst[k] = a[k] * b.chirp[k]
		}
	} else {
		inv := 1 / float64(n)
		for k := 0; k < n; k++ {
			v := a[k] * b.chirp[k]
			dst[k] = complex(real(v)*inv, -imag(v)*inv)
		}
	}
}
