package fft

import (
	"fmt"
	"math"
	"math/cmplx"
	"testing"

	"soifft/internal/cvec"
	"soifft/internal/ref"
)

// The differential kernel-oracle suite. One table drives every algorithm
// (Plan, all four SixStep variants, forced-backend flavors) through every
// layout (AoS, SoA) and direction against oracles of known answers:
//
//   - the dense O(n^2) reference DFT from internal/ref, for every size
//     where it is affordable (n <= denseOracleMax);
//   - analytic closed forms (shifted impulse, tone combs) that are exact at
//     any size, covering the Fig. 11 geometry sizes where the dense oracle
//     is out of reach;
//   - each engine's own AoS result, which the SoA run must match within
//     reassociation tolerance (the two backends perform the same arithmetic
//     on different layouts).
//
// This replaces the per-kernel ad-hoc comparisons that used to live in
// plan_test.go and sixstep_test.go: a new kernel backend or variant gets
// full oracle coverage by appearing in oracleEngines.

const (
	// oracleTol bounds the relative L2 error of any engine against an
	// exact oracle (dense or analytic).
	oracleTol = 1e-9
	// crossTol bounds AoS vs SoA disagreement of one engine: same
	// operation order on different layouts, so only reassociation by the
	// compiler may differ.
	crossTol = 1e-12
	// denseOracleMax is the largest size the O(n^2) dense oracle runs at.
	denseOracleMax = 2048
)

// Size classes. Smooth sizes exercise every radix mix and the codelet
// dispatch (n = 1, 2 included as the degenerate edges); rough sizes route
// through Bluestein; the large sizes are the two Fig. 11 geometry points
// N = S^2*7*64 for S = 8 and 32, where only the analytic oracles apply.
var (
	oracleSmoothSizes = []int{
		1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13, 14, 15, 16,
		20, 21, 24, 25, 26, 27, 30, 32, 35, 44, 49, 52, 55, 60, 64,
		100, 121, 125, 128, 144, 169, 210, 256, 343, 360, 512,
		1001, 1024, 1280, 1792, 2048,
	}
	oracleRoughSizes = []int{17, 19, 23, 29, 31, 37, 41, 97, 101, 257, 509, 1009, 2003}
	oracleLargeSizes = []int{28672, 458752}
)

// oracleEngine is one (algorithm, variant, backend) under test: an AoS
// entry point and its SoA twin, plus the directions it implements.
type oracleEngine struct {
	name string
	dirs []Direction
	aos  func(dst, src []complex128, dir Direction)
	soa  func(dst, src cvec.SoA, dir Direction)
}

// oracleEngines builds every engine applicable to size n.
func oracleEngines(t *testing.T, n int) []oracleEngine {
	t.Helper()
	p := MustPlan(n)
	engines := []oracleEngine{{
		name: "plan",
		dirs: []Direction{Forward, Inverse},
		aos:  p.Transform,
		soa:  p.TransformSoA,
	}}
	if n < 4 {
		return engines
	}
	addSixStep := func(name string, s *SixStep) {
		engines = append(engines, oracleEngine{
			name: name,
			dirs: []Direction{Forward}, // SixStep is forward-only
			aos:  func(dst, src []complex128, _ Direction) { s.Forward(dst, src) },
			soa:  func(dst, src cvec.SoA, _ Direction) { s.ForwardSoA(dst, src) },
		})
	}
	for _, v := range AllVariants {
		s, err := NewSixStep(n, v, 4)
		if err != nil {
			return engines // prime n: no 2D split for any variant
		}
		addSixStep(fmt.Sprintf("6step/%v/%v", v, s.Backend()), s)
	}
	// The opt variant auto-selects the SoA backend; pin the AoS backend as
	// its own engine so both implementations stay under oracle coverage
	// and cross-check against each other through the shared oracles.
	if sAoS, err := NewSixStepBackend(n, SixStepOpt, 4, BackendAoS); err == nil {
		addSixStep("6step/6-step-opt/forced-aos", sAoS)
	}
	return engines
}

// oracleInput is one stimulus with its exact expected spectra (nil when no
// oracle of that direction/kind applies at this size).
type oracleInput struct {
	name string
	x    []complex128
	want map[Direction][]complex128
}

// oracleInputs builds the stimuli for size n.
func oracleInputs(n int) []oracleInput {
	var ins []oracleInput

	// Random data against the dense oracle where affordable; at larger
	// sizes it still drives the AoS-vs-SoA cross-check.
	rnd := oracleInput{name: "random", x: ref.RandomVector(n, int64(n)), want: map[Direction][]complex128{}}
	if n <= denseOracleMax {
		rnd.want[Forward] = ref.DFT(rnd.x)
		rnd.want[Inverse] = ref.IDFT(rnd.x)
	}
	ins = append(ins, rnd)

	// Shifted impulse: exact closed form at every bin and any size.
	// DFT(delta_p)[k] = W_n^{kp}; IDFT(delta_p)[k] = conj(W_n^{kp})/n.
	pos := (n / 3) % n
	fw := make([]complex128, n)
	iw := make([]complex128, n)
	inv := 1 / float64(n)
	for k := 0; k < n; k++ {
		w := cmplx.Exp(complex(0, -2*math.Pi*float64(int64(k)*int64(pos)%int64(n))/float64(n)))
		fw[k] = w
		iw[k] = complex(real(w)*inv, -imag(w)*inv)
	}
	ins = append(ins, oracleInput{
		name: "impulse",
		x:    ref.Impulse(n, pos),
		want: map[Direction][]complex128{Forward: fw, Inverse: iw},
	})

	// Tone comb: spikes of height n*a_j at the excited bins (forward) and
	// a_j at the mirrored bins (inverse).
	freqs := []int{0}
	amps := []complex128{complex(0.5, -1)}
	if n >= 8 {
		freqs = append(freqs, 1, 2*n/5, n-1)
		amps = append(amps, complex(-1, 0.25), complex(2, 1), complex(0, -0.75))
	}
	tf := make([]complex128, n)
	ti := make([]complex128, n)
	for j, f := range freqs {
		tf[f] += complex(float64(n), 0) * amps[j]
		ti[(n-f)%n] += amps[j]
	}
	ins = append(ins, oracleInput{
		name: "tones",
		x:    ref.Tones(n, freqs, amps),
		want: map[Direction][]complex128{Forward: tf, Inverse: ti},
	})

	// All-zero input: the fixed point of every linear transform.
	ins = append(ins, oracleInput{
		name: "zero",
		x:    make([]complex128, n),
		want: map[Direction][]complex128{Forward: make([]complex128, n), Inverse: make([]complex128, n)},
	})
	return ins
}

func dirName(d Direction) string {
	if d == Inverse {
		return "inverse"
	}
	return "forward"
}

// runOracleSize drives every engine x direction x layout x stimulus at one
// size.
func runOracleSize(t *testing.T, n int) {
	engines := oracleEngines(t, n)
	inputs := oracleInputs(n)
	for _, eng := range engines {
		for _, dir := range eng.dirs {
			for _, in := range inputs {
				want := in.want[dir]
				gotAoS := make([]complex128, n)
				eng.aos(gotAoS, in.x, dir)
				if want != nil {
					if e := cvec.RelErrL2(gotAoS, want); e > oracleTol {
						t.Errorf("%s/%s/aos/%s n=%d: relerr %g vs oracle", eng.name, dirName(dir), in.name, n, e)
					}
				}
				src := cvec.FromComplex(in.x)
				dst := cvec.NewSoA(n)
				eng.soa(dst, src, dir)
				gotSoA := dst.ToComplex()
				if want != nil {
					if e := cvec.RelErrL2(gotSoA, want); e > oracleTol {
						t.Errorf("%s/%s/soa/%s n=%d: relerr %g vs oracle", eng.name, dirName(dir), in.name, n, e)
					}
				}
				if e := cvec.RelErrL2(gotSoA, gotAoS); e > crossTol {
					t.Errorf("%s/%s/%s n=%d: AoS vs SoA disagree by %g", eng.name, dirName(dir), in.name, n, e)
				}
			}
		}
	}
}

func TestKernelOracleSmooth(t *testing.T) {
	for _, n := range oracleSmoothSizes {
		runOracleSize(t, n)
	}
}

func TestKernelOracleBluestein(t *testing.T) {
	for _, n := range oracleRoughSizes {
		runOracleSize(t, n)
	}
}

func TestKernelOracleFig11Sizes(t *testing.T) {
	if testing.Short() {
		t.Skip("large sizes skipped in -short mode")
	}
	for _, n := range oracleLargeSizes {
		runOracleSize(t, n)
	}
}

// TestKernelOracleLaneBatch drives the lane-interleaved batch kernel, both
// layouts and directions, against the (oracle-verified) Plan on each
// deinterleaved lane.
func TestKernelOracleLaneBatch(t *testing.T) {
	cases := [][2]int{
		{1, 4}, {2, 3}, {4, 8}, {8, 8}, {16, 5}, {64, 8},
		{120, 3}, {128, 16}, {360, 2}, {448, 8},
	}
	for _, c := range cases {
		n, lanes := c[0], c[1]
		lb, err := NewLaneBatch(n, lanes)
		if err != nil {
			t.Fatalf("NewLaneBatch(%d,%d): %v", n, lanes, err)
		}
		p := MustPlan(n)
		x := ref.RandomVector(n*lanes, int64(n*lanes))
		for _, dir := range []Direction{Forward, Inverse} {
			gotAoS := append([]complex128(nil), x...)
			lb.Transform(gotAoS, dir)
			s := cvec.FromComplex(x)
			lb.TransformSoA(s, dir)
			gotSoA := s.ToComplex()
			if e := cvec.RelErrL2(gotSoA, gotAoS); e > crossTol {
				t.Errorf("lane n=%d lanes=%d %s: AoS vs SoA disagree by %g", n, lanes, dirName(dir), e)
			}
			col := make([]complex128, n)
			want := make([]complex128, n)
			for l := 0; l < lanes; l++ {
				cvec.GatherStride(col, x, l, lanes)
				p.Transform(want, col, dir)
				cvec.GatherStride(col, gotAoS, l, lanes)
				if e := cvec.RelErrL2(col, want); e > crossTol {
					t.Errorf("lane n=%d lanes=%d %s lane %d: relerr %g vs plan", n, lanes, dirName(dir), l, e)
				}
			}
		}
	}
}
