package fft

import "math"

// Direction selects the sign of the transform exponent.
type Direction int

const (
	// Forward computes X[k] = sum_j x[j] * exp(-2*pi*i*j*k/n), unnormalized.
	Forward Direction = -1
	// Inverse computes x[j] = (1/n) * sum_k X[k] * exp(+2*pi*i*j*k/n).
	// The 1/n scaling is applied by the public entry points.
	Inverse Direction = +1
)

// expi returns exp(i*theta) via the standard library sin/cos, which are
// accurate to < 1 ulp. Twiddles are always produced from the exact angle for
// the index (never by repeated multiplication) so long transforms do not
// accumulate phase drift.
func expi(theta float64) complex128 {
	s, c := math.Sincos(theta)
	return complex(c, s)
}

// twiddle returns exp(dir * 2*pi*i * k / n).
func twiddle(dir Direction, k, n int) complex128 {
	// Reduce k mod n first so the float argument stays small.
	k %= n
	return expi(float64(dir) * 2 * math.Pi * float64(k) / float64(n))
}

// twiddleTable returns w[k] = exp(dir * 2*pi*i * k / n) for k in [0, m).
func twiddleTable(dir Direction, m, n int) []complex128 {
	t := make([]complex128, m)
	for k := range t {
		t[k] = twiddle(dir, k, n)
	}
	return t
}

// bitLen returns the number of bits needed to represent v.
func bitLen(v int) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// isPow2 reports whether n is a positive power of two.
func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// nextPow2 returns the smallest power of two >= n.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NextPow2 returns the smallest power of two >= n. Exported for sibling
// packages that size FFT-backed convolutions.
func NextPow2(n int) int { return nextPow2(n) }
