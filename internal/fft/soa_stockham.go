package fft

import "soifft/internal/cvec"

// Split-plane (SoA) Stockham stage kernels — the soaKernel backend. Each
// function is the exact arithmetic of its stockham.go twin with every
// complex operation expanded into the four float64 streams (rr, ii, ri,
// ir), so results match AoS up to floating-point reassociation (in
// practice bit-exactly, since the operation order is preserved — the
// oracle suite cross-checks at 1e-12 regardless).
//
// The slice preambles reslice each stream to the loop bound so the inner
// loops compile bounds-check-free (pinned in bce_budget.json); that, plus
// complex values never being packed/unpacked through 16-byte pairs, is
// where the SoA backend's throughput comes from.

// runStageSoA executes one split-plane Stockham pass: y <- butterfly(x).
// The stage's twiddle planes must be populated (ensureSoAStages).
func runStageSoA(st *stage, y, x cvec.SoA) {
	switch st.r {
	case 2:
		stageRadix2SoA(st, y.Re, y.Im, x.Re, x.Im)
	case 3:
		stageRadix3SoA(st, y.Re, y.Im, x.Re, x.Im)
	case 4:
		stageRadix4SoA(st, y.Re, y.Im, x.Re, x.Im)
	case 8:
		stageRadix8SoA(st, y.Re, y.Im, x.Re, x.Im)
	default:
		stageGenericSoA(st, y.Re, y.Im, x.Re, x.Im)
	}
}

func stageRadix2SoA(st *stage, yre, yim, xre, xim []float64) {
	m, s := st.m, st.s
	if s == 1 {
		twr, twi := st.twRe[:m], st.twIm[:m]
		x0r, x0i := xre[:m], xim[:m]
		x1r, x1i := xre[m:2*m], xim[m:2*m]
		yre, yim = yre[:2*m], yim[:2*m]
		for p := 0; p < m; p++ {
			wr, wi := twr[p], twi[p]
			ar, ai := x0r[p], x0i[p]
			br, bi := x1r[p], x1i[p]
			yre[2*p] = ar + br
			yim[2*p] = ai + bi
			dr, di := ar-br, ai-bi
			yre[2*p+1] = dr*wr - di*wi
			yim[2*p+1] = dr*wi + di*wr
		}
		return
	}
	for p := 0; p < m; p++ {
		wr, wi := st.twRe[p], st.twIm[p]
		x0r, x0i := xre[s*p:][:s], xim[s*p:][:s]
		x1r, x1i := xre[s*(p+m):][:s], xim[s*(p+m):][:s]
		y0r, y0i := yre[s*2*p:][:s], yim[s*2*p:][:s]
		y1r, y1i := yre[s*(2*p+1):][:s], yim[s*(2*p+1):][:s]
		for q := 0; q < s; q++ {
			ar, ai := x0r[q], x0i[q]
			br, bi := x1r[q], x1i[q]
			y0r[q] = ar + br
			y0i[q] = ai + bi
			dr, di := ar-br, ai-bi
			y1r[q] = dr*wr - di*wi
			y1i[q] = dr*wi + di*wr
		}
	}
}

func stageRadix4SoA(st *stage, yre, yim, xre, xim []float64) {
	m, s := st.m, st.s
	if s == 1 {
		twr, twi := st.twRe[:3*m], st.twIm[:3*m]
		for p := 0; p < m; p++ {
			w1r, w1i := twr[p*3], twi[p*3]
			w2r, w2i := twr[p*3+1], twi[p*3+1]
			w3r, w3i := twr[p*3+2], twi[p*3+2]
			u0r, u0i := xre[p], xim[p]
			u1r, u1i := xre[p+m], xim[p+m]
			u2r, u2i := xre[p+2*m], xim[p+2*m]
			u3r, u3i := xre[p+3*m], xim[p+3*m]
			ar, ai := u0r+u2r, u0i+u2i
			cr, ci := u0r-u2r, u0i-u2i
			br, bi := u1r+u3r, u1i+u3i
			dr, di := u1r-u3r, u1i-u3i
			// id = i*d = (-di, dr)
			yre[4*p] = ar + br
			yim[4*p] = ai + bi
			t1r, t1i := cr+di, ci-dr // c - id
			yre[4*p+1] = t1r*w1r - t1i*w1i
			yim[4*p+1] = t1r*w1i + t1i*w1r
			t2r, t2i := ar-br, ai-bi
			yre[4*p+2] = t2r*w2r - t2i*w2i
			yim[4*p+2] = t2r*w2i + t2i*w2r
			t3r, t3i := cr-di, ci+dr // c + id
			yre[4*p+3] = t3r*w3r - t3i*w3i
			yim[4*p+3] = t3r*w3i + t3i*w3r
		}
		return
	}
	for p := 0; p < m; p++ {
		w1r, w1i := st.twRe[p*3], st.twIm[p*3]
		w2r, w2i := st.twRe[p*3+1], st.twIm[p*3+1]
		w3r, w3i := st.twRe[p*3+2], st.twIm[p*3+2]
		x0r, x0i := xre[s*p:][:s], xim[s*p:][:s]
		x1r, x1i := xre[s*(p+m):][:s], xim[s*(p+m):][:s]
		x2r, x2i := xre[s*(p+2*m):][:s], xim[s*(p+2*m):][:s]
		x3r, x3i := xre[s*(p+3*m):][:s], xim[s*(p+3*m):][:s]
		y0r, y0i := yre[s*4*p:][:s], yim[s*4*p:][:s]
		y1r, y1i := yre[s*(4*p+1):][:s], yim[s*(4*p+1):][:s]
		y2r, y2i := yre[s*(4*p+2):][:s], yim[s*(4*p+2):][:s]
		y3r, y3i := yre[s*(4*p+3):][:s], yim[s*(4*p+3):][:s]
		for q := 0; q < s; q++ {
			u0r, u0i := x0r[q], x0i[q]
			u1r, u1i := x1r[q], x1i[q]
			u2r, u2i := x2r[q], x2i[q]
			u3r, u3i := x3r[q], x3i[q]
			ar, ai := u0r+u2r, u0i+u2i
			cr, ci := u0r-u2r, u0i-u2i
			br, bi := u1r+u3r, u1i+u3i
			dr, di := u1r-u3r, u1i-u3i
			y0r[q] = ar + br
			y0i[q] = ai + bi
			t1r, t1i := cr+di, ci-dr
			y1r[q] = t1r*w1r - t1i*w1i
			y1i[q] = t1r*w1i + t1i*w1r
			t2r, t2i := ar-br, ai-bi
			y2r[q] = t2r*w2r - t2i*w2i
			y2i[q] = t2r*w2i + t2i*w2r
			t3r, t3i := cr-di, ci+dr
			y3r[q] = t3r*w3r - t3i*w3i
			y3i[q] = t3r*w3i + t3i*w3r
		}
	}
}

func stageRadix3SoA(st *stage, yre, yim, xre, xim []float64) {
	m, s := st.m, st.s
	k := sin2pi3
	for p := 0; p < m; p++ {
		w1r, w1i := st.twRe[p*2], st.twIm[p*2]
		w2r, w2i := st.twRe[p*2+1], st.twIm[p*2+1]
		x0r, x0i := xre[s*p:][:s], xim[s*p:][:s]
		x1r, x1i := xre[s*(p+m):][:s], xim[s*(p+m):][:s]
		x2r, x2i := xre[s*(p+2*m):][:s], xim[s*(p+2*m):][:s]
		y0r, y0i := yre[s*3*p:][:s], yim[s*3*p:][:s]
		y1r, y1i := yre[s*(3*p+1):][:s], yim[s*(3*p+1):][:s]
		y2r, y2i := yre[s*(3*p+2):][:s], yim[s*(3*p+2):][:s]
		for q := 0; q < s; q++ {
			u0r, u0i := x0r[q], x0i[q]
			u1r, u1i := x1r[q], x1i[q]
			u2r, u2i := x2r[q], x2i[q]
			t1r, t1i := u1r+u2r, u1i+u2i
			ar, ai := u0r-0.5*t1r, u0i-0.5*t1i
			br, bi := k*(u1r-u2r), k*(u1i-u2i)
			// ib = i*b = (-bi, br)
			y0r[q] = u0r + t1r
			y0i[q] = u0i + t1i
			v1r, v1i := ar+bi, ai-br // a - ib
			y1r[q] = v1r*w1r - v1i*w1i
			y1i[q] = v1r*w1i + v1i*w1r
			v2r, v2i := ar-bi, ai+br // a + ib
			y2r[q] = v2r*w2r - v2i*w2i
			y2i[q] = v2r*w2i + v2i*w2r
		}
	}
}

func stageRadix8SoA(st *stage, yre, yim, xre, xim []float64) {
	m, s := st.m, st.s
	c := invSqrt2
	if s == 1 {
		stageRadix8SoAUnit(st, yre, yim, xre, xim)
		return
	}
	for p := 0; p < m; p++ {
		twr := st.twRe[p*7 : p*7+7]
		twi := st.twIm[p*7 : p*7+7]
		x0r, x0i := xre[s*p:][:s], xim[s*p:][:s]
		x1r, x1i := xre[s*(p+m):][:s], xim[s*(p+m):][:s]
		x2r, x2i := xre[s*(p+2*m):][:s], xim[s*(p+2*m):][:s]
		x3r, x3i := xre[s*(p+3*m):][:s], xim[s*(p+3*m):][:s]
		x4r, x4i := xre[s*(p+4*m):][:s], xim[s*(p+4*m):][:s]
		x5r, x5i := xre[s*(p+5*m):][:s], xim[s*(p+5*m):][:s]
		x6r, x6i := xre[s*(p+6*m):][:s], xim[s*(p+6*m):][:s]
		x7r, x7i := xre[s*(p+7*m):][:s], xim[s*(p+7*m):][:s]
		y0r, y0i := yre[s*8*p:][:s], yim[s*8*p:][:s]
		y1r, y1i := yre[s*(8*p+1):][:s], yim[s*(8*p+1):][:s]
		y2r, y2i := yre[s*(8*p+2):][:s], yim[s*(8*p+2):][:s]
		y3r, y3i := yre[s*(8*p+3):][:s], yim[s*(8*p+3):][:s]
		y4r, y4i := yre[s*(8*p+4):][:s], yim[s*(8*p+4):][:s]
		y5r, y5i := yre[s*(8*p+5):][:s], yim[s*(8*p+5):][:s]
		y6r, y6i := yre[s*(8*p+6):][:s], yim[s*(8*p+6):][:s]
		y7r, y7i := yre[s*(8*p+7):][:s], yim[s*(8*p+7):][:s]
		for q := 0; q < s; q++ {
			u0r, u0i := x0r[q], x0i[q]
			u1r, u1i := x1r[q], x1i[q]
			u2r, u2i := x2r[q], x2i[q]
			u3r, u3i := x3r[q], x3i[q]
			u4r, u4i := x4r[q], x4i[q]
			u5r, u5i := x5r[q], x5i[q]
			u6r, u6i := x6r[q], x6i[q]
			u7r, u7i := x7r[q], x7i[q]
			a0r, a0i := u0r+u4r, u0i+u4i
			a1r, a1i := u1r+u5r, u1i+u5i
			a2r, a2i := u2r+u6r, u2i+u6i
			a3r, a3i := u3r+u7r, u3i+u7i
			b0r, b0i := u0r-u4r, u0i-u4i
			b1r, b1i := u1r-u5r, u1i-u5i
			b2r, b2i := u2r-u6r, u2i-u6i
			b3r, b3i := u3r-u7r, u3i-u7i
			// b1 *= W8^1 = c*(1-i); b2 *= -i; b3 *= -c*(1+i).
			b1r, b1i = c*(b1r+b1i), c*(b1i-b1r)
			b2r, b2i = b2i, -b2r
			b3r, b3i = c*(b3i-b3r), -c*(b3r+b3i)
			{
				ar, ai := a0r+a2r, a0i+a2i
				cr, ci := a0r-a2r, a0i-a2i
				br, bi := a1r+a3r, a1i+a3i
				dr, di := a1r-a3r, a1i-a3i
				y0r[q] = ar + br
				y0i[q] = ai + bi
				tr, ti := cr+di, ci-dr
				y2r[q] = tr*twr[1] - ti*twi[1]
				y2i[q] = tr*twi[1] + ti*twr[1]
				tr, ti = ar-br, ai-bi
				y4r[q] = tr*twr[3] - ti*twi[3]
				y4i[q] = tr*twi[3] + ti*twr[3]
				tr, ti = cr-di, ci+dr
				y6r[q] = tr*twr[5] - ti*twi[5]
				y6i[q] = tr*twi[5] + ti*twr[5]
			}
			{
				ar, ai := b0r+b2r, b0i+b2i
				cr, ci := b0r-b2r, b0i-b2i
				br, bi := b1r+b3r, b1i+b3i
				dr, di := b1r-b3r, b1i-b3i
				tr, ti := ar+br, ai+bi
				y1r[q] = tr*twr[0] - ti*twi[0]
				y1i[q] = tr*twi[0] + ti*twr[0]
				tr, ti = cr+di, ci-dr
				y3r[q] = tr*twr[2] - ti*twi[2]
				y3i[q] = tr*twi[2] + ti*twr[2]
				tr, ti = ar-br, ai-bi
				y5r[q] = tr*twr[4] - ti*twi[4]
				y5i[q] = tr*twi[4] + ti*twr[4]
				tr, ti = cr-di, ci+dr
				y7r[q] = tr*twr[6] - ti*twi[6]
				y7i[q] = tr*twi[6] + ti*twr[6]
			}
		}
	}
}

// stageRadix8SoAUnit is the s==1 specialization of stageRadix8SoA: the last
// pass of a radix-8-first factorization, where each butterfly touches single
// elements and the 32 per-p slice preambles of the general path would cost
// more than the arithmetic they guard.
func stageRadix8SoAUnit(st *stage, yre, yim, xre, xim []float64) {
	m := st.m
	c := invSqrt2
	twr, twi := st.twRe[:7*m], st.twIm[:7*m]
	xre, xim = xre[:8*m], xim[:8*m]
	yre, yim = yre[:8*m], yim[:8*m]
	for p := 0; p < m; p++ {
		u0r, u0i := xre[p], xim[p]
		u1r, u1i := xre[p+m], xim[p+m]
		u2r, u2i := xre[p+2*m], xim[p+2*m]
		u3r, u3i := xre[p+3*m], xim[p+3*m]
		u4r, u4i := xre[p+4*m], xim[p+4*m]
		u5r, u5i := xre[p+5*m], xim[p+5*m]
		u6r, u6i := xre[p+6*m], xim[p+6*m]
		u7r, u7i := xre[p+7*m], xim[p+7*m]
		a0r, a0i := u0r+u4r, u0i+u4i
		a1r, a1i := u1r+u5r, u1i+u5i
		a2r, a2i := u2r+u6r, u2i+u6i
		a3r, a3i := u3r+u7r, u3i+u7i
		b0r, b0i := u0r-u4r, u0i-u4i
		b1r, b1i := u1r-u5r, u1i-u5i
		b2r, b2i := u2r-u6r, u2i-u6i
		b3r, b3i := u3r-u7r, u3i-u7i
		// b1 *= W8^1 = c*(1-i); b2 *= -i; b3 *= -c*(1+i).
		b1r, b1i = c*(b1r+b1i), c*(b1i-b1r)
		b2r, b2i = b2i, -b2r
		b3r, b3i = c*(b3i-b3r), -c*(b3r+b3i)
		w := p * 7
		{
			ar, ai := a0r+a2r, a0i+a2i
			cr, ci := a0r-a2r, a0i-a2i
			br, bi := a1r+a3r, a1i+a3i
			dr, di := a1r-a3r, a1i-a3i
			yre[8*p] = ar + br
			yim[8*p] = ai + bi
			tr, ti := cr+di, ci-dr
			yre[8*p+2] = tr*twr[w+1] - ti*twi[w+1]
			yim[8*p+2] = tr*twi[w+1] + ti*twr[w+1]
			tr, ti = ar-br, ai-bi
			yre[8*p+4] = tr*twr[w+3] - ti*twi[w+3]
			yim[8*p+4] = tr*twi[w+3] + ti*twr[w+3]
			tr, ti = cr-di, ci+dr
			yre[8*p+6] = tr*twr[w+5] - ti*twi[w+5]
			yim[8*p+6] = tr*twi[w+5] + ti*twr[w+5]
		}
		{
			ar, ai := b0r+b2r, b0i+b2i
			cr, ci := b0r-b2r, b0i-b2i
			br, bi := b1r+b3r, b1i+b3i
			dr, di := b1r-b3r, b1i-b3i
			tr, ti := ar+br, ai+bi
			yre[8*p+1] = tr*twr[w] - ti*twi[w]
			yim[8*p+1] = tr*twi[w] + ti*twr[w]
			tr, ti = cr+di, ci-dr
			yre[8*p+3] = tr*twr[w+2] - ti*twi[w+2]
			yim[8*p+3] = tr*twi[w+2] + ti*twr[w+2]
			tr, ti = ar-br, ai-bi
			yre[8*p+5] = tr*twr[w+4] - ti*twi[w+4]
			yim[8*p+5] = tr*twi[w+4] + ti*twr[w+4]
			tr, ti = cr-di, ci+dr
			yre[8*p+7] = tr*twr[w+6] - ti*twi[w+6]
			yim[8*p+7] = tr*twi[w+6] + ti*twr[w+6]
		}
	}
}

// stageGenericSoA handles the small odd primes (5, 7, 11, 13) with an
// r-point matrix DFT per butterfly; the per-butterfly scratch lives in two
// fixed stack arrays (no allocation, unlike the AoS twin's pooled slice).
func stageGenericSoA(st *stage, yre, yim, xre, xim []float64) {
	r, m, s := st.r, st.m, st.s
	var uRe, uIm [maxGenericRadix]float64
	for p := 0; p < m; p++ {
		twr := st.twRe[p*(r-1) : p*(r-1)+(r-1)]
		twi := st.twIm[p*(r-1) : p*(r-1)+(r-1)]
		for q := 0; q < s; q++ {
			for t := 0; t < r; t++ {
				uRe[t] = xre[q+s*(p+m*t)]
				uIm[t] = xim[q+s*(p+m*t)]
			}
			accR, accI := uRe[0], uIm[0]
			for t := 1; t < r; t++ {
				accR += uRe[t]
				accI += uIm[t]
			}
			yre[q+s*r*p] = accR
			yim[q+s*r*p] = accI
			for t := 1; t < r; t++ {
				wrr := st.wrRe[t*r : t*r+r]
				wri := st.wrIm[t*r : t*r+r]
				accR, accI = uRe[0], uIm[0]
				for uu := 1; uu < r; uu++ {
					vr, vi := uRe[uu], uIm[uu]
					accR += vr*wrr[uu] - vi*wri[uu]
					accI += vr*wri[uu] + vi*wrr[uu]
				}
				tr, ti := twr[t-1], twi[t-1]
				yre[q+s*(r*p+t)] = accR*tr - accI*ti
				yim[q+s*(r*p+t)] = accR*ti + accI*tr
			}
		}
	}
}
