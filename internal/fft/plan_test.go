package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"soifft/internal/cvec"
	"soifft/internal/ref"
)

// testSizes covers every dispatch path: tiny, pure radix-2/4, each small
// prime, mixed products, and Bluestein (large prime factors).
var testSizes = []int{
	1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
	20, 21, 24, 25, 26, 27, 32, 35, 44, 49, 52, 55, 60, 64,
	100, 121, 125, 128, 144, 169, 210, 256, 343, 360, 512, 1001, 1024,
	// rough sizes -> Bluestein
	17, 19, 23, 29, 31, 37, 41, 97, 101, 257, 509, 1009,
	// SOI-relevant shapes: M' = (8/7)*M with M = 7*2^k, and (5/4)*2^k
	7 * 16, 8 * 16, 5 * 64, 7 * 64, 8 * 64, 1280, 1792, 2048,
}

// Forward/Inverse comparisons against the dense reference DFT live in the
// kernel-oracle suite (oracle_test.go), which drives every engine, layout
// and direction through shared oracles.

func TestRoundTrip(t *testing.T) {
	for _, n := range testSizes {
		p := MustPlan(n)
		x := ref.RandomVector(n, int64(3*n+2))
		y := make([]complex128, n)
		z := make([]complex128, n)
		p.Forward(y, x)
		p.Inverse(z, y)
		if err := cvec.RelErrL2(z, x); err > 1e-12 {
			t.Errorf("n=%d: round-trip relative error %g", n, err)
		}
	}
}

func TestInPlaceTransform(t *testing.T) {
	for _, n := range testSizes {
		p := MustPlan(n)
		x := ref.RandomVector(n, int64(5*n+7))
		want := make([]complex128, n)
		p.Forward(want, x)
		// Same transform with dst aliasing src.
		inPlace := append([]complex128(nil), x...)
		p.Forward(inPlace, inPlace)
		if err := cvec.RelErrL2(inPlace, want); err != 0 {
			t.Errorf("n=%d: in-place differs from out-of-place by %g", n, err)
		}
	}
}

func TestImpulseResponse(t *testing.T) {
	// DFT of a shifted impulse is a pure exponential of unit magnitude.
	for _, n := range []int{8, 12, 35, 37, 128, 1009} {
		p := MustPlan(n)
		pos := n / 3
		y := make([]complex128, n)
		p.Forward(y, ref.Impulse(n, pos))
		for k := 0; k < n; k++ {
			want := cmplx.Exp(complex(0, -2*math.Pi*float64(k*pos%n)/float64(n)))
			if cmplx.Abs(y[k]-want) > 1e-12*float64(n) {
				t.Fatalf("n=%d k=%d: impulse response %v, want %v", n, k, y[k], want)
			}
		}
	}
}

func TestToneIsolation(t *testing.T) {
	// A pure tone at bin f transforms to a single spike of height n.
	for _, n := range []int{16, 56, 100, 127} {
		p := MustPlan(n)
		f := 2*n/5 + 1
		y := make([]complex128, n)
		p.Forward(y, ref.Tones(n, []int{f}, []complex128{1}))
		for k := 0; k < n; k++ {
			want := complex(0, 0)
			if k == f {
				want = complex(float64(n), 0)
			}
			if cmplx.Abs(y[k]-want) > 1e-9*float64(n) {
				t.Fatalf("n=%d k=%d: got %v want %v", n, k, y[k], want)
			}
		}
	}
}

func TestPlanErrors(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d): expected error", n)
		}
	}
}

func TestFactorize(t *testing.T) {
	cases := []struct {
		n      int
		smooth bool
	}{
		{1024, true}, {3 * 1024, true}, {5 * 7 * 11 * 13, true},
		{17, false}, {2 * 17, false}, {1 << 20, true}, {7 * (1 << 10), true},
	}
	for _, c := range cases {
		radices, smooth := factorize(c.n, 1)
		if smooth != c.smooth {
			t.Errorf("factorize(%d): smooth=%v want %v", c.n, smooth, c.smooth)
		}
		if smooth {
			prod := 1
			for _, r := range radices {
				prod *= r
			}
			if prod != c.n {
				t.Errorf("factorize(%d): product %d", c.n, prod)
			}
		}
	}
}

// --- property-based tests (testing/quick) ---

// quickVec adapts a raw float slice from testing/quick into a complex vector
// of the plan length.
func quickVec(vals []float64, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		re, im := 0.1*float64(i%7), -0.1*float64(i%5)
		if 2*i < len(vals) {
			re = math.Mod(vals[2*i], 8)
		}
		if 2*i+1 < len(vals) {
			im = math.Mod(vals[2*i+1], 8)
		}
		if math.IsNaN(re) || math.IsInf(re, 0) {
			re = 1
		}
		if math.IsNaN(im) || math.IsInf(im, 0) {
			im = 1
		}
		x[i] = complex(re, im)
	}
	return x
}

func TestQuickLinearity(t *testing.T) {
	const n = 96
	p := MustPlan(n)
	f := func(av, bv []float64, ar, ai float64) bool {
		if math.IsNaN(ar) || math.IsInf(ar, 0) {
			ar = 0.5
		}
		if math.IsNaN(ai) || math.IsInf(ai, 0) {
			ai = -0.5
		}
		alpha := complex(math.Mod(ar, 4), math.Mod(ai, 4))
		a, b := quickVec(av, n), quickVec(bv, n)
		// F(alpha*a + b)
		comb := make([]complex128, n)
		for i := range comb {
			comb[i] = alpha*a[i] + b[i]
		}
		fc := make([]complex128, n)
		p.Forward(fc, comb)
		// alpha*F(a) + F(b)
		fa := make([]complex128, n)
		fb := make([]complex128, n)
		p.Forward(fa, a)
		p.Forward(fb, b)
		for i := range fa {
			fa[i] = alpha*fa[i] + fb[i]
		}
		return cvec.RelErrL2(fc, fa) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickParseval(t *testing.T) {
	// ||F(x)||^2 == n * ||x||^2.
	for _, n := range []int{64, 60, 101} {
		p := MustPlan(n)
		f := func(vals []float64) bool {
			x := quickVec(vals, n)
			y := make([]complex128, n)
			p.Forward(y, x)
			lhs := cvec.L2Norm(y)
			rhs := math.Sqrt(float64(n)) * cvec.L2Norm(x)
			return math.Abs(lhs-rhs) <= 1e-10*(1+rhs)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestQuickShiftTheorem(t *testing.T) {
	// DFT(rotate(x, s))[k] == DFT(x)[k] * exp(-2*pi*i*s*k/n).
	const n = 84
	p := MustPlan(n)
	f := func(vals []float64, shift uint8) bool {
		s := int(shift) % n
		x := quickVec(vals, n)
		rot := make([]complex128, n)
		for i := range rot {
			rot[i] = x[(i+s)%n]
		}
		fx := make([]complex128, n)
		fr := make([]complex128, n)
		p.Forward(fx, x)
		p.Forward(fr, rot)
		for k := range fx {
			fx[k] *= cmplx.Exp(complex(0, 2*math.Pi*float64(s*k%n)/float64(n)))
		}
		return cvec.RelErrL2(fr, fx) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickConvolutionTheorem(t *testing.T) {
	// IFFT(FFT(a) .* FFT(b)) == circular convolution of a and b.
	const n = 48
	p := MustPlan(n)
	f := func(av, bv []float64) bool {
		a, b := quickVec(av, n), quickVec(bv, n)
		fa := make([]complex128, n)
		fb := make([]complex128, n)
		p.Forward(fa, a)
		p.Forward(fb, b)
		for i := range fa {
			fa[i] *= fb[i]
		}
		got := make([]complex128, n)
		p.Inverse(got, fa)
		want := make([]complex128, n)
		for i := 0; i < n; i++ {
			var acc complex128
			for j := 0; j < n; j++ {
				acc += a[j] * b[(i-j+n)%n]
			}
			want[i] = acc
		}
		return cvec.RelErrL2(got, want) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentPlanUse(t *testing.T) {
	// A single Plan must be safe for concurrent Transform calls.
	const n = 240
	p := MustPlan(n)
	x := ref.RandomVector(n, 9)
	want := make([]complex128, n)
	p.Forward(want, x)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for iter := 0; iter < 50; iter++ {
				got := make([]complex128, n)
				p.Forward(got, x)
				if cvec.RelErrL2(got, want) != 0 {
					done <- errMismatch
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errString("concurrent transform mismatch")

type errString string

func (e errString) Error() string { return string(e) }

func TestLinearityAcrossAllDispatchPaths(t *testing.T) {
	// DFT(x) at bin 0 equals the plain sum — a quick invariant hit on every
	// dispatch path (codelet, stockham radices, bluestein).
	for _, n := range []int{4, 8, 16, 24, 40, 56, 104, 208, 1009} {
		p := MustPlan(n)
		x := ref.RandomVector(n, int64(n))
		var sum complex128
		for _, v := range x {
			sum += v
		}
		y := make([]complex128, n)
		p.Forward(y, x)
		if d := y[0] - sum; real(d)*real(d)+imag(d)*imag(d) > 1e-18*float64(n*n) {
			t.Errorf("n=%d: Y[0]=%v, sum=%v", n, y[0], sum)
		}
	}
}

func TestConjugateSymmetryForRealInput(t *testing.T) {
	// Real input => Y[k] == conj(Y[n-k]).
	for _, n := range []int{32, 56, 101} {
		p := MustPlan(n)
		x := make([]complex128, n)
		for i := range x {
			re := float64((i*7)%13) - 6
			x[i] = complex(re, 0)
		}
		y := make([]complex128, n)
		p.Forward(y, x)
		for k := 1; k < n; k++ {
			want := complex(real(y[n-k]), -imag(y[n-k]))
			d := y[k] - want
			if real(d)*real(d)+imag(d)*imag(d) > 1e-18*float64(n*n) {
				t.Fatalf("n=%d k=%d: conjugate symmetry broken", n, k)
			}
		}
	}
}
