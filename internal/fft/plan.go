// Package fft is a from-scratch, stdlib-only FFT library for
// double-precision complex data. It provides:
//
//   - Plan: a reusable, goroutine-safe transform plan for any length n,
//     using a mixed-radix Stockham autosort kernel for smooth sizes
//     (radices 2,3,4,5,7,11,13) and Bluestein's chirp-z algorithm
//     otherwise;
//   - Batch: many independent transforms of the same length, optionally
//     strided, optionally executed by a worker pool (the paper's
//     "I_m (x) F_p is naturally parallel");
//   - SixStep*: the large-1D-FFT variants of Section 5.2 of the paper
//     (Bailey's 6-step algorithm, naive and bandwidth-optimized, with
//     pipelined and fine-grain-parallel flavors used for the Fig. 10
//     ablation), including a variant with a fused demodulation pass.
//
// Forward transforms are unnormalized; Inverse applies the 1/n factor, so
// Inverse(Forward(x)) == x.
package fft

import (
	"fmt"
	"sync"
)

// maxGenericRadix is the largest prime factor handled by the mixed-radix
// kernel; anything larger routes the whole transform through Bluestein.
const maxGenericRadix = 13

// Plan holds precomputed twiddle factors and dispatch information for
// transforms of one fixed length. A Plan is safe for concurrent use; each
// call draws scratch space from an internal pool.
type Plan struct {
	n      int
	stages []stage    // mixed-radix schedule (nil when blue != nil or n <= 2)
	blue   *bluestein // chirp-z fallback for rough sizes
	work   sync.Pool
	soa    soaState // lazy SoA resources (soa_plan.go)
}

// stage describes one Stockham pass: the current sub-transform length is
// r*m, processed at stride s, with twiddle table tw[p*(r-1)+(t-1)] =
// exp(-2*pi*i*p*t/(r*m)) and, for generic radices, the r x r DFT matrix wr.
type stage struct {
	r, m, s int
	tw      []complex128
	wr      []complex128 // wr[t*r+u] = exp(-2*pi*i*t*u/r); nil for r=2,3,4
	// Split-plane twiddle tables for the SoA backend; populated lazily by
	// ensureSoAStages (kernel.go) so AoS-only plans never allocate them.
	twRe, twIm []float64
	wrRe, wrIm []float64
}

// NewPlan creates a transform plan for length n (n >= 1).
//
//soilint:shape return.n == n
func NewPlan(n int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("fft: invalid transform length %d", n)
	}
	p := &Plan{n: n}
	p.work.New = func() any {
		b := make([]complex128, n)
		return &b
	}
	if n <= 2 {
		return p, nil
	}
	radices, smooth := factorize(n, 1)
	if !smooth {
		b, err := newBluestein(n)
		if err != nil {
			return nil, err
		}
		p.blue = b
		return p, nil
	}
	p.stages = buildStages(n, radices)
	return p, nil
}

// MustPlan is NewPlan that panics on error, for tests and internal use with
// lengths known to be valid.
func MustPlan(n int) *Plan {
	p, err := NewPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// N returns the transform length.
//
//soilint:shape return == n
func (p *Plan) N() int { return p.n }

// aliasingStride8 reports whether a radix-8 butterfly whose write legs are
// separated by s complex elements maps all eight of them onto one L1 set
// group. 256 complex elements = 4096 bytes in AoS layout; the SoA planes
// alias at s%512 == 0, so the AoS criterion covers both layouts.
func aliasingStride8(s int) bool { return s%256 == 0 }

// factorize splits n into the radix schedule used by the Stockham kernel.
// Powers of two are emitted as radix-8 passes with a radix-4/2 remainder:
// the specialized high-radix butterflies cut the number of passes over
// memory to ~log8(n) — the same motivation as the paper's radix-8/16
// register blocking (Section 5.2.4).
//
// strideMul is the stride the first stage starts at (1 for a Plan, `lanes`
// for a LaneBatch) and gates the radix-8 emission: once the accumulated
// stride lands on the 4 KiB-aliasing lattice (aliasingStride8), the
// remaining power-of-two factors come out as radix-4 passes. An aliasing
// radix-8 stage needs 16 L1 ways per set (8 write legs on top of the 8
// aliasing read legs every power-of-two length has) against 8-way hardware
// and thrashes at every working-set size; a radix-4 stage needs exactly 8
// ways and stays at streaming bandwidth, so two radix-4 passes beat one
// thrashing radix-8 pass on both kernel layouts.
//
// Returns smooth=false when n has a prime factor > maxGenericRadix.
func factorize(n, strideMul int) (radices []int, smooth bool) {
	e2 := 0
	for n%2 == 0 {
		e2++
		n /= 2
	}
	s := strideMul
	for e2 >= 3 && !aliasingStride8(s) {
		radices = append(radices, 8) //soilint:ignore hotalloc plan-time factorization, O(log n) appends
		s *= 8
		e2 -= 3
	}
	for ; e2 >= 2; e2 -= 2 {
		radices = append(radices, 4) //soilint:ignore hotalloc plan-time factorization, O(log n) appends
	}
	if e2 == 1 {
		radices = append(radices, 2)
	}
	for _, r := range []int{3, 5, 7, 11, 13} {
		for n%r == 0 {
			radices = append(radices, r) //soilint:ignore hotalloc plan-time factorization, O(log n) appends
			n /= r
		}
	}
	return radices, n == 1
}

// buildStages precomputes the per-stage twiddle tables for the forward
// direction. The inverse direction reuses them via the conjugation identity
// IFFT(x) = conj(FFT(conj(x)))/n.
func buildStages(n int, radices []int) []stage {
	stages := make([]stage, 0, len(radices))
	cur := n
	s := 1
	for _, r := range radices {
		m := cur / r
		st := stage{r: r, m: m, s: s}
		st.tw = make([]complex128, m*(r-1))
		for pi := 0; pi < m; pi++ {
			for t := 1; t < r; t++ {
				st.tw[pi*(r-1)+(t-1)] = twiddle(Forward, pi*t, cur)
			}
		}
		if r != 2 && r != 3 && r != 4 && r != 8 {
			st.wr = make([]complex128, r*r)
			for t := 0; t < r; t++ {
				for u := 0; u < r; u++ {
					st.wr[t*r+u] = twiddle(Forward, t*u, r)
				}
			}
		}
		stages = append(stages, st)
		cur = m
		s *= r
	}
	return stages
}

func (p *Plan) getWork() []complex128 {
	return *(p.work.Get().(*[]complex128))
}

func (p *Plan) putWork(b []complex128) {
	p.work.Put(&b)
}

// Transform computes the DFT of src into dst. dst and src must both have
// length >= p.N(); dst may alias src (in-place). Forward is unnormalized;
// Inverse applies the 1/n scaling.
//
//soilint:shape len(dst) >= n
//soilint:shape len(src) >= n
func (p *Plan) Transform(dst, src []complex128, dir Direction) {
	n := p.n
	if len(dst) < n || len(src) < n {
		panic(fmt.Sprintf("fft: Transform buffers too short: len(dst)=%d len(src)=%d n=%d", len(dst), len(src), n))
	}
	dst, src = dst[:n], src[:n]
	switch {
	case n == 1:
		dst[0] = src[0]
	case n == 2:
		a, b := src[0], src[1]
		dst[0], dst[1] = a+b, a-b
		if dir == Inverse {
			dst[0] *= 0.5
			dst[1] *= 0.5
		}
	case n <= 16 && (n == 4 || n == 8 || n == 16):
		// Fully unrolled codelets for the hot tiny sizes (the F_P stage of
		// the SOI factorization runs these by the millions).
		if dir == Forward {
			codeletForward(dst, src, n)
			return
		}
		var tmp [16]complex128
		for i := 0; i < n; i++ {
			v := src[i]
			tmp[i] = complex(real(v), -imag(v))
		}
		codeletForward(dst, tmp[:n], n)
		inv := 1 / float64(n)
		for i := 0; i < n; i++ {
			dst[i] = complex(real(dst[i])*inv, -imag(dst[i])*inv)
		}
	case p.blue != nil:
		p.blue.transform(dst, src, dir)
	default:
		p.stockham(dst, src, dir)
	}
}

// Forward computes the unnormalized forward DFT of src into dst.
//
//soilint:shape len(dst) >= n
//soilint:shape len(src) >= n
func (p *Plan) Forward(dst, src []complex128) { p.Transform(dst, src, Forward) }

// Inverse computes the normalized (1/n) inverse DFT of src into dst.
//
//soilint:shape len(dst) >= n
//soilint:shape len(src) >= n
func (p *Plan) Inverse(dst, src []complex128) { p.Transform(dst, src, Inverse) }

// stockham runs the mixed-radix autosort pipeline. The two ping-pong buffers
// are dst and a pooled scratch vector; the parity of the stage count decides
// which buffer the pipeline starts in so that the last pass always lands in
// dst, with no final copy (one fewer memory sweep — the kind of accounting
// Section 5.2 of the paper is about).
func (p *Plan) stockham(dst, src []complex128, dir Direction) {
	w := p.getWork()
	defer p.putWork(w)

	a, b := dst, w
	if len(p.stages)%2 != 0 {
		a, b = w, dst
	}
	if dir == Forward {
		copy(a, src)
	} else {
		for i, v := range src {
			a[i] = complex(real(v), -imag(v))
		}
	}
	for i := range p.stages {
		runStage(&p.stages[i], b, a)
		a, b = b, a
	}
	// Result is now in dst (== a after the final swap).
	if dir == Inverse {
		inv := 1 / float64(p.n)
		for i, v := range dst {
			dst[i] = complex(real(v)*inv, -imag(v)*inv)
		}
	}
}

// runStage executes one Stockham pass: y <- butterfly(x).
func runStage(st *stage, y, x []complex128) {
	switch st.r {
	case 2:
		stageRadix2(st, y, x)
	case 3:
		stageRadix3(st, y, x)
	case 4:
		stageRadix4(st, y, x)
	case 8:
		stageRadix8(st, y, x)
	default:
		stageGeneric(st, y, x)
	}
}
