package fft

import (
	"fmt"

	"soifft/internal/cvec"
)

// Split-plane execution for LaneBatch. The lane-interleaved layout is even
// friendlier to SoA than the single-transform case: the combined (q, lane)
// inner index walks each plane contiguously for n*lanes elements per
// butterfly leg, so the stage kernels see long unit-stride float64 runs
// with no complex packing. The serving executor (internal/serve) picks this
// path via PickLaneBackend once n*lanes is large enough to amortize the
// plane bookkeeping.

// ensureSoA lazily splits the stage twiddles and arms the plane pool.
func (lb *LaneBatch) ensureSoA() {
	lb.soa.once.Do(func() {
		ensureSoAStages(lb.stages)
		total := lb.n * lb.lanes
		lb.soa.work.New = func() any {
			s := cvec.NewSoA(total)
			return &s
		}
	})
}

// TransformSoA runs all lanes in place on the plane pair x (length >=
// n*lanes), lane-interleaved exactly like Transform.
//
//soilint:shape len(x.Re) >= n * lanes
func (lb *LaneBatch) TransformSoA(x cvec.SoA, dir Direction) {
	total := lb.n * lb.lanes
	if x.Len() < total {
		panic(fmt.Sprintf("fft: LaneBatch SoA buffer %d < %d", x.Len(), total))
	}
	x = x.Slice(0, total)
	if lb.n == 1 {
		return // length-1 transforms are the identity in both directions
	}
	lb.ensureSoA()
	wp := lb.soa.work.Get().(*cvec.SoA)
	defer lb.soa.work.Put(wp)
	w := (*wp).Slice(0, total)

	a, b := x, w
	if len(lb.stages)%2 != 0 {
		a, b = w, x
	}
	if dir == Forward {
		if &a.Re[0] != &x.Re[0] {
			x.CopyTo(a)
		}
	} else {
		// Conjugation identity; the final conjugate+scale happens below.
		copy(a.Re, x.Re)
		for i, v := range x.Im {
			a.Im[i] = -v
		}
	}
	for i := range lb.stages {
		runStageSoA(&lb.stages[i], b, a)
		a, b = b, a
	}
	// Result is in x now.
	if dir == Inverse {
		inv := 1 / float64(lb.n)
		for i := range x.Re {
			x.Re[i] *= inv
		}
		for i := range x.Im {
			x.Im[i] = -x.Im[i] * inv
		}
	}
}

// ForwardSoA runs all lanes forward on planes, in place.
func (lb *LaneBatch) ForwardSoA(x cvec.SoA) { lb.TransformSoA(x, Forward) }

// InverseSoA runs all lanes inverse (1/n scaled) on planes, in place.
func (lb *LaneBatch) InverseSoA(x cvec.SoA) { lb.TransformSoA(x, Inverse) }
