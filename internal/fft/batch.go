package fft

import (
	"fmt"

	"soifft/internal/par"
)

// Batch executes many independent transforms of the same length, the
// "I_m (x) F_p" building block of Equation 1: m instances of F_p run in
// parallel, each on a contiguous slice. A Batch is safe for concurrent use.
type Batch struct {
	plan    *Plan
	workers int
}

// NewBatch creates a batch executor for transforms of length n using the
// given intra-node worker count (<= 0 selects GOMAXPROCS).
func NewBatch(n, workers int) (*Batch, error) {
	p, err := NewPlan(n)
	if err != nil {
		return nil, err
	}
	return &Batch{plan: p, workers: workers}, nil
}

// Plan returns the underlying single-transform plan.
func (b *Batch) Plan() *Plan { return b.plan }

// Transform runs count transforms. Transform i reads src[i*dist : i*dist+n]
// and writes dst[i*dist : i*dist+n]; dist must be >= n. dst may alias src.
// The symbolic form assumes count >= 1 (count <= 0 is a no-op).
//
//soilint:shape len(dst) >= (count - 1) * dist + plan.n
//soilint:shape len(src) >= (count - 1) * dist + plan.n
func (b *Batch) Transform(dst, src []complex128, count, dist int, dir Direction) {
	n := b.plan.n
	if dist < n {
		panic(fmt.Sprintf("fft: Batch distance %d < transform length %d", dist, n))
	}
	if count <= 0 {
		return
	}
	if need := (count-1)*dist + n; len(dst) < need || len(src) < need {
		panic(fmt.Sprintf("fft: Batch buffers too short for count=%d dist=%d n=%d", count, dist, n))
	}
	par.For(b.workers, count, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			off := i * dist
			b.plan.Transform(dst[off:off+n], src[off:off+n], dir)
		}
	})
}

// TransformStrided runs count transforms whose elements are interleaved:
// transform i reads src[i + j*count] for j in [0, n). This is the access
// pattern of step 2 of the 6-step algorithm before the explicit transpose
// (P-point FFTs in stride P); it exists mainly as the slow baseline that the
// copy-to-contiguous-buffer optimization in sixstep.go is measured against.
func (b *Batch) TransformStrided(dst, src []complex128, count int, dir Direction) {
	n := b.plan.n
	if need := count * n; len(dst) < need || len(src) < need {
		panic("fft: TransformStrided buffers too short")
	}
	par.For(b.workers, count, func(lo, hi int) {
		in := make([]complex128, n)  //soilint:ignore hotalloc deliberate slow baseline: strided access is what sixstep.go is measured against
		out := make([]complex128, n) //soilint:ignore hotalloc deliberate slow baseline: strided access is what sixstep.go is measured against
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				in[j] = src[i+j*count]
			}
			b.plan.Transform(out, in, dir)
			for j := 0; j < n; j++ {
				dst[i+j*count] = out[j]
			}
		}
	})
}
