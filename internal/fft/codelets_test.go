package fft

import (
	"testing"

	"soifft/internal/cvec"
	"soifft/internal/ref"
)

func TestCodeletsMatchReference(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		x := ref.RandomVector(n, int64(n))
		dst := make([]complex128, n)
		if !codeletForward(dst, x, n) {
			t.Fatalf("no codelet for n=%d", n)
		}
		if e := cvec.RelErrL2(dst, ref.DFT(x)); e > 1e-14 {
			t.Errorf("codelet n=%d: error %g", n, e)
		}
	}
	if codeletForward(nil, nil, 6) {
		t.Error("codelet claimed to handle n=6")
	}
}

func TestCodeletsInPlace(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		x := ref.RandomVector(n, 3)
		want := ref.DFT(x)
		codeletForward(x, x, n)
		if e := cvec.RelErrL2(x, want); e > 1e-14 {
			t.Errorf("in-place codelet n=%d: error %g", n, e)
		}
	}
}

func TestCodeletInverseThroughPlan(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		p := MustPlan(n)
		x := ref.RandomVector(n, 5)
		y := make([]complex128, n)
		z := make([]complex128, n)
		p.Forward(y, x)
		p.Inverse(z, y)
		if e := cvec.RelErrL2(z, x); e > 1e-14 {
			t.Errorf("n=%d codelet round trip: %g", n, e)
		}
		if e := cvec.RelErrL2(z, ref.IDFT(y)); e > 1e-13 {
			t.Errorf("n=%d codelet inverse vs reference: %g", n, e)
		}
	}
}

func TestRadix8Schedule(t *testing.T) {
	// Powers of two must factor into radix-8 passes with a small remainder.
	radices, smooth := factorize(1 << 12)
	if !smooth {
		t.Fatal("2^12 not smooth")
	}
	eights := 0
	for _, r := range radices {
		if r == 8 {
			eights++
		}
	}
	if eights != 4 {
		t.Errorf("2^12 schedule %v: want four radix-8 passes", radices)
	}
	radices, _ = factorize(1 << 13) // 8,8,8,8,2
	if len(radices) != 5 || radices[4] != 2 {
		t.Errorf("2^13 schedule %v", radices)
	}
	radices, _ = factorize(1 << 14) // 8,8,8,8,4
	if len(radices) != 5 || radices[4] != 4 {
		t.Errorf("2^14 schedule %v", radices)
	}
}

func BenchmarkCodelets(b *testing.B) {
	for _, n := range []int{8, 16} {
		p := MustPlan(n)
		x := ref.RandomVector(n, 1)
		dst := make([]complex128, n)
		b.Run(planName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Forward(dst, x)
			}
		})
	}
}

func planName(n int) string {
	return map[int]string{8: "n=8", 16: "n=16"}[n]
}
