package fft

import (
	"testing"

	"soifft/internal/cvec"
	"soifft/internal/ref"
)

func TestCodeletsMatchReference(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		x := ref.RandomVector(n, int64(n))
		dst := make([]complex128, n)
		if !codeletForward(dst, x, n) {
			t.Fatalf("no codelet for n=%d", n)
		}
		if e := cvec.RelErrL2(dst, ref.DFT(x)); e > 1e-14 {
			t.Errorf("codelet n=%d: error %g", n, e)
		}
	}
	if codeletForward(nil, nil, 6) {
		t.Error("codelet claimed to handle n=6")
	}
}

func TestCodeletsInPlace(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		x := ref.RandomVector(n, 3)
		want := ref.DFT(x)
		codeletForward(x, x, n)
		if e := cvec.RelErrL2(x, want); e > 1e-14 {
			t.Errorf("in-place codelet n=%d: error %g", n, e)
		}
	}
}

func TestCodeletInverseThroughPlan(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		p := MustPlan(n)
		x := ref.RandomVector(n, 5)
		y := make([]complex128, n)
		z := make([]complex128, n)
		p.Forward(y, x)
		p.Inverse(z, y)
		if e := cvec.RelErrL2(z, x); e > 1e-14 {
			t.Errorf("n=%d codelet round trip: %g", n, e)
		}
		if e := cvec.RelErrL2(z, ref.IDFT(y)); e > 1e-13 {
			t.Errorf("n=%d codelet inverse vs reference: %g", n, e)
		}
	}
}

func TestRadix8Schedule(t *testing.T) {
	// Powers of two factor into radix-8 passes while the accumulated stride
	// stays off the 4 KiB-aliasing lattice (s = 1, 8, 64), then radix-4
	// passes with at most one radix-2 remainder (see factorize).
	radices, smooth := factorize(1<<12, 1)
	if !smooth {
		t.Fatal("2^12 not smooth")
	}
	eights := 0
	for _, r := range radices {
		if r == 8 {
			eights++
		}
	}
	if eights != 3 {
		t.Errorf("2^12 schedule %v: want three radix-8 passes", radices)
	}
	radices, _ = factorize(1<<13, 1) // 8,8,8,4,4
	if len(radices) != 5 || radices[3] != 4 || radices[4] != 4 {
		t.Errorf("2^13 schedule %v", radices)
	}
	radices, _ = factorize(1<<14, 1) // 8,8,8,4,4,2
	if len(radices) != 6 || radices[5] != 2 {
		t.Errorf("2^14 schedule %v", radices)
	}
	// A lane batch starts its stride at `lanes`, so it leaves radix-8 for
	// radix-4 a stage sooner.
	radices, _ = factorize(1<<9, 8) // 8,8,4,2 (strides 8, 64, 512, 2048)
	if len(radices) != 4 || radices[2] != 4 || radices[3] != 2 {
		t.Errorf("2^9 lane-8 schedule %v", radices)
	}
}

func BenchmarkCodelets(b *testing.B) {
	for _, n := range []int{8, 16} {
		p := MustPlan(n)
		x := ref.RandomVector(n, 1)
		dst := make([]complex128, n)
		b.Run(planName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Forward(dst, x)
			}
		})
	}
}

func planName(n int) string {
	return map[int]string{8: "n=8", 16: "n=16"}[n]
}
