// Command soifftd serves batched FFTs over TCP.
//
// It fronts the soifft library with internal/serve: concurrent requests for
// the same transform length are coalesced into one call to the batched FFT
// kernel, SOI plans are cached (and persisted as wisdom) across requests,
// and admission control sheds load beyond -max-inflight with a typed
// overload error instead of queueing without bound.
//
// Usage:
//
//	soifftd -listen :7311 -wisdom-dir /var/lib/soifft &
//	soiload -addr localhost:7311 -n 64 -c 8
//
// SIGTERM or SIGINT starts a graceful drain: the listener closes, new
// requests are refused with a shutting-down error frame, and in-flight
// requests complete and flush before the process exits (bounded by
// -drain-timeout).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"soifft"
	"soifft/internal/serve"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:7311", "TCP listen address (host:port; port 0 picks a free port)")
		metricsAddr  = flag.String("metrics", "", "optional HTTP address serving the plain-text metrics (e.g. 127.0.0.1:7312)")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "executor pool size")
		maxBatch     = flag.Int("max-batch", 32, "max transforms coalesced into one kernel call (1 disables batching)")
		maxInflight  = flag.Int("max-inflight", 256, "admitted-transform bound; beyond it requests are shed")
		planCache    = flag.Int("plan-cache", 32, "SOI plan LRU capacity")
		wisdomDir    = flag.String("wisdom-dir", "", "directory persisting SOI window designs across runs (empty disables)")
		soiMinN      = flag.Int("soi-min-n", 1<<20, "smallest length auto-routed to the SOI algorithm")
		maxN         = flag.Int("max-n", 1<<24, "largest accepted transform length")
		segments     = flag.Int("soi-segments", 0, "SOI segment count (0 = library default)")
		convWidth    = flag.Int("soi-conv-width", 0, "SOI convolution width (0 = library default)")
		codecShare   = flag.Int("codec-budget-share", 16, "lossy response codecs are clamped to EstimatedError/share")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound after SIGTERM/SIGINT")
	)
	flag.Parse()

	if *wisdomDir != "" {
		if err := os.MkdirAll(*wisdomDir, 0o755); err != nil {
			log.Fatalf("soifftd: wisdom dir: %v", err)
		}
	}
	srv := serve.New(serve.Config{
		MaxInFlight:      *maxInflight,
		MaxBatch:         *maxBatch,
		Workers:          *workers,
		PlanCacheSize:    *planCache,
		WisdomDir:        *wisdomDir,
		SOI:              soifft.Config{Segments: *segments, ConvWidth: *convWidth},
		SOIMinN:          *soiMinN,
		MaxN:             *maxN,
		CodecBudgetShare: *codecShare,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("soifftd: %v", err)
	}
	// The resolved address line is machine-readable on purpose: with port 0,
	// scripts (scripts/bench_serve.sh) parse the actual port from it.
	log.Printf("soifftd: listening on %s (workers=%d max-batch=%d max-inflight=%d)",
		ln.Addr(), *workers, *maxBatch, *maxInflight)

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, srv.MetricsText())
		})
		msrv := &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != http.ErrServerClosed {
				log.Printf("soifftd: metrics server: %v", err)
			}
		}()
		defer msrv.Close()
		log.Printf("soifftd: metrics on http://%s/metrics", *metricsAddr)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		log.Printf("soifftd: %v — draining (timeout %v)", s, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("soifftd: drain incomplete: %v", err)
			os.Exit(1)
		}
		log.Printf("soifftd: drained cleanly")
	case err := <-serveErr:
		log.Fatalf("soifftd: serve: %v", err)
	}
}
