// Command soibench regenerates the tables and figures of the paper's
// evaluation (see DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-reproduced numbers).
//
// Usage:
//
//	soibench -table 2          # Xeon vs Xeon Phi spec comparison
//	soibench -table 3          # experiment setup
//	soibench -fig 3            # modeled CT/SOI x Xeon/Phi, 32 nodes
//	soibench -fig 8            # weak scaling 4..512 nodes (model + simulator)
//	soibench -fig 9            # SOI execution-time breakdowns
//	soibench -fig 10           # local FFT optimization ablation (measured)
//	soibench -fig 11           # convolution optimization ablation (measured)
//	soibench -fig 12           # symmetric vs offload mode
//	soibench -verify           # run the real distributed SOI and check error
//	soibench -all              # everything
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"soifft/internal/cluster"
	"soifft/internal/conv"
	"soifft/internal/cvec"
	"soifft/internal/fft"
	"soifft/internal/machine"
	"soifft/internal/perfmodel"
	"soifft/internal/ref"
	"soifft/internal/soi"
	"soifft/internal/trace"
	"soifft/internal/window"
)

func main() {
	fig := flag.String("fig", "", "comma-separated figure numbers to regenerate (3,8,9,10,11,12)")
	table := flag.String("table", "", "comma-separated table numbers to regenerate (1,2,3)")
	verify := flag.Bool("verify", false, "run the real distributed SOI in-process and verify vs the serial FFT")
	extra := flag.Bool("extra", false, "extension studies: segments-per-process trade-off, hybrid mode, (mu,B) accuracy grid")
	all := flag.Bool("all", false, "regenerate everything")
	size := flag.Int("size", 1<<22, "local FFT size for the Fig 10 measurement")
	convChunks := flag.Int("conv-chunks", 256, "chunks per node for the Fig 11 measurement")
	flag.Parse()

	ran := false
	want := func(list string, id string) bool {
		if *all {
			return true
		}
		for _, f := range strings.Split(list, ",") {
			if strings.TrimSpace(f) == id {
				return true
			}
		}
		return false
	}
	for _, id := range []string{"1", "2", "3"} {
		if want(*table, id) {
			ran = true
			printTable(id)
		}
	}
	for _, id := range []string{"3", "8", "9", "10", "11", "12"} {
		if want(*fig, id) {
			ran = true
			printFigure(id, *size, *convChunks)
		}
	}
	if *verify || *all {
		ran = true
		runVerify()
	}
	if *extra || *all {
		ran = true
		runExtraStudies()
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func printTable(id string) {
	switch id {
	case "1":
		fmt.Println("== Table 1: Notation ==")
		rows := [][2]string{
			{"N", "number of input elements"},
			{"P", "number of segments / compute nodes"},
			{"M = N/P", "number of input elements per node"},
			{"mu = nmu/dmu", "oversampling factor (typically <= 5/4; Table 3 uses 8/7)"},
			{"N' = mu*N, M' = mu*M", "oversampled sizes"},
			{"W", "matrix used in convolution-and-oversampling"},
			{"B", "convolution width, typical value 72"},
		}
		for _, r := range rows {
			fmt.Printf("  %-22s %s\n", r[0], r[1])
		}
	case "2":
		fmt.Println("== Table 2: Comparison of Xeon and Xeon Phi ==")
		x, p := machine.XeonE5(), machine.XeonPhi()
		fmt.Printf("  %-28s %-18s %s\n", "", "Xeon E5-2680", "Xeon Phi SE10")
		fmt.Printf("  %-28s %dx%dx%dx%d %10s %dx%dx%dx%d\n", "Socket x core x smt x simd",
			x.Sockets, x.CoresPerSocket, x.SMT, x.SIMDWidth, "",
			p.Sockets, p.CoresPerSocket, p.SMT, p.SIMDWidth)
		fmt.Printf("  %-28s %-18.1f %.1f\n", "Clock (GHz)", x.ClockGHz, p.ClockGHz)
		fmt.Printf("  %-28s %d/%d/%-11d %d/%d/-\n", "L1/L2/L3 Cache (KB)", x.L1KB, x.L2KB, x.L3KB, p.L1KB, p.L2KB)
		fmt.Printf("  %-28s %-18.0f %.0f\n", "DP GFLOP/s", x.PeakGFlops, p.PeakGFlops)
		fmt.Printf("  %-28s %-18.0f %.0f\n", "Stream bandwidth (GB/s)", x.StreamGBps, p.StreamGBps)
		fmt.Printf("  %-28s %-18.2f %.2f\n", "Bytes per Ops", x.Bops(), p.Bops())
	case "3":
		fmt.Println("== Table 3: Experiment setup (simulated Stampede) ==")
		f := machine.StampedeFDR()
		fmt.Printf("  Processor        : see Table 2\n")
		fmt.Printf("  PCIe bandwidth   : %.0f GB/s\n", machine.StampedePCIe().BytesPerSec/1e9)
		fmt.Printf("  Interconnect     : FDR InfiniBand model, %.0f GiB/s/node at %d nodes, %.0f%%/doubling congestion\n",
			f.PerNodeBytesPerSec/machine.GiB, f.BaseNodes, 100*f.CongestionPerLog2)
		fmt.Printf("  SOI              : 8 or 2 segments/process, mu = 8/7, B = 72\n")
		fmt.Printf("  Runtime          : Go %s, GOMAXPROCS=%d\n", runtime.Version(), runtime.GOMAXPROCS(0))
	}
}

func printFigure(id string, size, convChunks int) {
	cfg := perfmodel.Default()
	switch id {
	case "3":
		fmt.Println("== Fig 3: Estimated performance improvements (32 nodes, N = 2^27*32) ==")
		fmt.Printf("  %-24s %-10s %-8s %-8s %-8s %s\n", "configuration", "normalized", "localFFT", "conv", "MPI", "seconds")
		for _, r := range perfmodel.Fig3(cfg) {
			fmt.Printf("  %-24s %-10.3f %-8.3f %-8.3f %-8.3f %.3f\n",
				fmt.Sprintf("%s / %s", r.Algorithm, r.Platform),
				r.Normalized, r.LocalFFT, r.Conv, r.MPI, r.Seconds)
		}
	case "8":
		fmt.Println("== Fig 8: Weak scaling FFT performance (2^27 points/node), TFLOPS ==")
		fmt.Printf("  %-6s %-9s %-9s %-9s %-9s %-10s %s\n", "nodes", "CT Xeon", "CT Phi", "SOI Xeon", "SOI Phi", "speedupCT", "speedupSOI")
		for _, r := range perfmodel.Fig8(cfg) {
			fmt.Printf("  %-6d %-9.2f %-9.2f %-9.2f %-9.2f %-10.2f %.2f\n",
				r.Nodes, r.CTXeon, r.CTPhi, r.SOIXeon, r.SOIPhi, r.SpeedupCT, r.SpeedupSOI)
		}
		fmt.Println("  -- event simulation cross-check (SOI Xeon Phi) --")
		for _, r := range cluster.WeakScaling(cluster.Config{Node: machine.XeonPhi(), Algorithm: perfmodel.SOI, Overlap: true, FuseDemod: true}, perfmodel.Fig8Nodes) {
			fmt.Printf("  %s\n", r)
		}
	case "9":
		fmt.Println("== Fig 9: Execution time breakdowns of SOI (seconds) ==")
		fmt.Printf("  %-10s %-6s %-10s %-12s %-12s %-8s %s\n", "platform", "nodes", "local FFT", "convolution", "exposed MPI", "etc.", "total")
		for _, r := range perfmodel.Fig9(cfg) {
			e := r.Estimate
			fmt.Printf("  %-10s %-6d %-10.3f %-12.3f %-12.3f %-8.3f %.3f\n",
				r.Platform, r.Nodes, e.LocalFFT, e.Conv, e.ExposedMPI, e.Etc, e.Total)
		}
	case "10":
		runFig10(size)
	case "11":
		runFig11(convChunks)
	case "12":
		fmt.Println("== Fig 12 / Section 7: Symmetric vs offload mode (32 nodes) ==")
		for _, r := range perfmodel.Fig12(cfg, 32) {
			fmt.Printf("  %-10s %-8.3f s   (%.0f%% of symmetric)\n", r.Mode, r.Seconds, 100*r.Slower)
		}
	}
}

// runFig10 measures the local-FFT ablation of Fig. 10 on this host and
// reports the modeled Xeon Phi numbers beside it.
func runFig10(n int) {
	fmt.Printf("== Fig 10: %dM-point local FFT optimization ablation ==\n", n>>20)
	x := ref.RandomVector(n, 1)
	out := make([]complex128, n)
	ref2 := make([]complex128, n)
	fft.MustPlan(n).Forward(ref2, x)
	flops := machine.FFTFlops(n)
	fmt.Printf("  %-16s %-12s %-10s %s\n", "variant", "this host", "sweeps", "modeled Phi GF/s")
	phi := machine.XeonPhi()
	for _, v := range fft.AllVariants {
		plan, err := fft.NewSixStep(n, v, 0)
		if err != nil {
			fmt.Printf("  %-16s unavailable: %v\n", v, err)
			continue
		}
		best := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			start := time.Now()
			plan.Forward(out, x)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		if e := cvec.RelErrL2(out, ref2); e > 1e-10 {
			fmt.Printf("  %-16s WRONG RESULT (%g)\n", v, e)
			continue
		}
		gfs := flops / best.Seconds() / 1e9
		// Modeled Phi rate: bandwidth-bound at sweeps x 16 bytes per
		// element, capped by the paper's measured 12% efficiency ceiling.
		sweeps := v.MemorySweeps()
		bwTime := float64(sweeps) * 16 * float64(n) / (phi.StreamGBps * 1e9)
		modeled := flops / bwTime / 1e9
		if lim := 0.125 * phi.PeakGFlops; modeled > lim {
			modeled = lim
		}
		fmt.Printf("  %-16s %6.2f GF/s   %-10d %6.1f\n", v, gfs, sweeps, modeled)
	}
}

// runFig11 measures the convolution ablation of Fig. 11 on this host across
// a segment-count sweep standing in for the node-count axis.
func runFig11(chunks int) {
	fmt.Println("== Fig 11: convolution-and-oversampling optimization ablation ==")
	fmt.Printf("  %-14s", "segments:")
	segCounts := []int{4, 8, 16, 32, 64}
	for _, s := range segCounts {
		fmt.Printf(" %8d", s)
	}
	fmt.Println("   (time per output element, ns)")
	for _, v := range conv.AllVariants {
		fmt.Printf("  %-14s", v)
		for _, s := range segCounts {
			p := window.Params{N: s * s * 7 * chunks, Segments: s, NMu: 8, DMu: 7, B: 72}
			f, err := window.Design(p)
			if err != nil {
				fmt.Printf(" %8s", "n/a")
				continue
			}
			c1 := chunks
			x := ref.RandomVector(conv.InputLen(f, 0, c1), 2)
			u := make([]complex128, conv.OutputLen(f, 0, c1))
			best := time.Duration(1 << 62)
			for i := 0; i < 3; i++ {
				start := time.Now()
				conv.Apply(v, f, u, x, 0, c1, 0)
				if d := time.Since(start); d < best {
					best = d
				}
			}
			fmt.Printf(" %8.1f", float64(best.Nanoseconds())/float64(len(u)))
		}
		fmt.Println()
	}
}

func runVerify() {
	fmt.Println("== Verification: real distributed SOI (in-process ranks) vs serial FFT ==")
	for _, tc := range [][4]int{{2, 8, 4, 72}, {4, 8, 4, 72}, {8, 8, 4, 72}, {4, 16, 2, 72}} {
		vr, err := cluster.VerifyRun(tc[0], tc[1], tc[2], tc[3])
		if err != nil {
			fmt.Printf("  world=%d: %v\n", tc[0], err)
			continue
		}
		fmt.Printf("  world=%d segments=%d N=%d: rel err %.2e (conv %.1fms, fft %.1fms, mpi %.1fms)\n",
			vr.World, vr.Params.Segments, vr.Params.N, vr.RelErr,
			msOf(vr, trace.PhaseConv), msOf(vr, trace.PhaseLocalFFT), msOf(vr, trace.PhaseExposedMPI))
	}
}

func msOf(vr *cluster.VerifyResult, phase string) float64 {
	return float64(vr.Breakdown.Get(phase).Microseconds()) / 1000
}

// runExtraStudies prints the design-space explorations the paper discusses
// but does not plot: the segments-per-process trade-off (Section 6.1), the
// hybrid coprocessor mode (Section 7), and the measured (mu, B)
// accuracy/cost grid behind Table 1's "typically <= 5/4" and B = 72.
func runExtraStudies() {
	cfg := perfmodel.Default()

	fmt.Println("== Extra: segments-per-process trade-off (SOI on Xeon Phi) ==")
	fmt.Printf("  %-6s", "nodes")
	segs := []int{1, 2, 4, 8, 16}
	for _, s := range segs {
		fmt.Printf(" %8s", fmt.Sprintf("S=%d", s))
	}
	fmt.Println("   (total seconds; * = paper's policy)")
	for _, nodes := range []int{32, 128, 512} {
		fmt.Printf("  %-6d", nodes)
		rows := cfg.SegmentsStudy(perfmodel.XeonPhi, nodes, segs)
		for _, r := range rows {
			mark := " "
			if r.Segments == perfmodel.SegmentsFor(nodes) {
				mark = "*"
			}
			fmt.Printf(" %7.3f%s", r.Total, mark)
		}
		fmt.Println()
	}

	fmt.Println("== Extra: hybrid mode (Xeon + Xeon Phi per node, Section 7) ==")
	for _, nodes := range []int{32, 512} {
		opt := perfmodel.Options{Nodes: nodes, PerNode: perfmodel.PerNodeElems, Overlap: true}
		phi := cfg.Estimate(perfmodel.SOI, perfmodel.XeonPhi, opt)
		hyb := cfg.EstimateHybrid(opt)
		fmt.Printf("  %3d nodes: Phi-only %.3fs, hybrid %.3fs (+%.1f%% — paper expects <10%%)\n",
			nodes, phi.Total, hyb.Total, 100*(phi.Total/hyb.Total-1))
	}

	fmt.Println("== Extra: measured (mu, B) accuracy grid (small N, real transforms) ==")
	fmt.Printf("  %-8s %-4s %-14s %-14s %s\n", "mu", "B", "designed bound", "measured err", "conv flops / fft flops @2^32")
	type cfgRow struct{ nmu, dmu, b int }
	for _, r := range []cfgRow{{8, 7, 24}, {8, 7, 48}, {8, 7, 72}, {5, 4, 48}, {5, 4, 72}, {4, 3, 48}} {
		segments, chunks := 4, 16
		m := r.dmu * segments * chunks
		p := window.Params{N: m * segments, Segments: segments, NMu: r.nmu, DMu: r.dmu, B: r.b}
		f, err := window.Design(p)
		if err != nil {
			fmt.Printf("  %d/%-6d %-4d design failed: %v\n", r.nmu, r.dmu, r.b, err)
			continue
		}
		measured := measureAccuracy(p)
		cost := perfmodel.AccuracyCostStudy(float64(uint64(1)<<32),
			[]perfmodel.AccuracyRow{{NMu: r.nmu, DMu: r.dmu, B: r.b}})[0].ConvFlops
		fmt.Printf("  %d/%-6d %-4d %-14.2e %-14.2e %.2fx\n",
			r.nmu, r.dmu, r.b, f.AliasBound(), measured, cost)
	}
}

// measureAccuracy runs a real sequential SOI transform and compares it to
// the exact FFT.
func measureAccuracy(p window.Params) float64 {
	pl, err := soi.NewPlan(p, soi.DefaultOptions())
	if err != nil {
		return math.NaN()
	}
	x := ref.RandomVector(p.N, 99)
	got := make([]complex128, p.N)
	if err := pl.Forward(got, x); err != nil {
		return math.NaN()
	}
	want := make([]complex128, p.N)
	fft.MustPlan(p.N).Forward(want, x)
	return cvec.RelErrL2(got, want)
}
