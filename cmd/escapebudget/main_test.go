package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"soifft/internal/gcbudget"
)

// TestGateAgainstTree runs the real gate end to end: the checked-in budget
// must pass, and a budget with one hot function's entry removed — exactly
// what the tree looks like when a fresh escape appears in an unbudgeted
// function — must fail with exit code 1.
func TestGateAgainstTree(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go build over the hot packages; skipped with -short")
	}
	var discard strings.Builder
	if code := run(nil, &discard, &discard); code != 0 {
		t.Fatalf("gate against checked-in budget: exit %d, output:\n%s", code, discard.String())
	}

	root, err := gcbudget.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	budget, err := gcbudget.ReadBudget(filepath.Join(root, "escape_budget.json"))
	if err != nil {
		t.Fatal(err)
	}
	removed := false
	for pkg, byFn := range budget {
		for fn := range byFn {
			delete(budget[pkg], fn)
			removed = true
			break
		}
		if removed {
			break
		}
	}
	if !removed {
		t.Fatal("checked-in budget is empty; the gate would be vacuous")
	}
	data, err := json.MarshalIndent(budget, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	tampered := filepath.Join(t.TempDir(), "budget.json")
	if err := os.WriteFile(tampered, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if code := run([]string{"-budget", tampered}, &out, &out); code != 1 {
		t.Fatalf("gate against tampered budget: exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no budget entry") {
		t.Errorf("tampered-budget failure should name the unbudgeted function; got:\n%s", out.String())
	}
}

// TestWidenedCoverage pins the audited package set: the pipeline drivers
// joined the kernel packages once their per-transform allocations were
// pooled, and the serving layer (frame codec + scheduler) joined once its
// per-request path was pooled too, so a new escape in internal/serve or
// internal/wire fails the gate like one in internal/fft does. The client
// library and the soifftd daemon close the loop: every package that
// touches a frame is budgeted.
func TestWidenedCoverage(t *testing.T) {
	want := []string{"fft", "conv", "cvec", "window", "soi", "dist", "serve", "wire", "codec", "client", "soifftd"}
	if len(hotPackages) != len(want) {
		t.Fatalf("hotPackages = %v, want %d entries", hotPackages, len(want))
	}
	for i, suffix := range want {
		if !strings.HasSuffix(hotPackages[i], suffix) {
			t.Errorf("hotPackages[%d] = %q, want suffix %q", i, hotPackages[i], suffix)
		}
	}
}
