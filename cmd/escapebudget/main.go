// Command escapebudget pins the compiler's escape-analysis verdict on the
// hot kernel packages. It runs `go build -gcflags='-m -m'` over the hot
// paths, parses the "escapes to heap" / "moved to heap" diagnostics,
// attributes each escape to its enclosing function, and diffs the counts
// against the checked-in escape_budget.json. Any escape in excess of a
// function's budget — in particular any escape in a function with no budget
// entry — fails the gate with exit code 1.
//
// The point is regression-proofing, not zero-escape purism: plan
// construction is SUPPOSED to allocate, and the budget records exactly how
// much. What must never happen silently is a new heap escape creeping into
// a kernel the sync.Pool work de-allocated: the compiler would accept it,
// the tests would pass, and the bandwidth-bound inner loops would start
// paying allocator and GC latency. The budget makes the compiler's own
// escape analysis the reviewer.
//
// Usage:
//
//	escapebudget [-budget escape_budget.json] [-update] [-v] [packages...]
//
// With no packages, the four hot packages are audited. -update rewrites the
// budget file to match the current tree (use after deliberate changes,
// reviewing the diff). Exit codes: 0 within budget, 1 over budget, 2 usage
// or toolchain failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// hotPackages are the audited kernels: the paper's bandwidth-bound compute
// paths, where PR 1 removed hot-loop allocations.
var hotPackages = []string{
	"./internal/fft",
	"./internal/conv",
	"./internal/cvec",
	"./internal/window",
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("escapebudget", flag.ContinueOnError)
	fs.SetOutput(stderr)
	budgetPath := fs.String("budget", "escape_budget.json", "budget file, relative to the module root")
	update := fs.Bool("update", false, "rewrite the budget file to match the current tree")
	verbose := fs.Bool("v", false, "list every escape site")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: escapebudget [flags] [packages...]\n\n")
		fmt.Fprintf(stderr, "Audits heap escapes in the hot kernel packages against %s.\n", *budgetPath)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	pkgs := fs.Args()
	if len(pkgs) == 0 {
		pkgs = hotPackages
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "escapebudget: %v\n", err)
		return 2
	}

	escapes, err := collectEscapes(root, pkgs)
	if err != nil {
		fmt.Fprintf(stderr, "escapebudget: %v\n", err)
		return 2
	}
	counts := countByFunc(root, escapes)

	if *verbose {
		for _, e := range escapes {
			fmt.Fprintf(stdout, "%s: %s:%d:%d: %s\n", e.pkg, e.file, e.line, e.col, e.msg)
		}
	}

	path := *budgetPath
	if !filepath.IsAbs(path) {
		path = filepath.Join(root, path)
	}
	if *update {
		if err := writeBudget(path, counts); err != nil {
			fmt.Fprintf(stderr, "escapebudget: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "escapebudget: wrote %s (%d packages)\n", *budgetPath, len(counts))
		return 0
	}

	budget, err := readBudget(path)
	if err != nil {
		fmt.Fprintf(stderr, "escapebudget: %v (run with -update to create it)\n", err)
		return 2
	}
	problems, notes := diffBudget(counts, budget)
	for _, n := range notes {
		fmt.Fprintf(stdout, "escapebudget: note: %s\n", n)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(stderr, "escapebudget: FAIL: %s\n", p)
		}
		fmt.Fprintf(stderr, "escapebudget: %d function(s) over budget; if the new escapes are deliberate, re-run with -update and commit the diff\n", len(problems))
		return 1
	}
	fmt.Fprintf(stdout, "escapebudget: ok (%d escape sites within budget across %d packages)\n", len(escapes), len(counts))
	return 0
}

// moduleRoot locates the directory containing go.mod, so the tool works
// from any subdirectory (tests run it from cmd/escapebudget).
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}

// escapeSite is one parsed heap-escape diagnostic.
type escapeSite struct {
	pkg  string // import path from the "# pkg" header
	file string // path as printed by the compiler, relative to the module root
	line int
	col  int
	msg  string
}

// collectEscapes builds the packages with -m -m and parses the escape
// diagnostics. The go build cache replays compiler diagnostics on cached
// builds, so repeated runs are fast and deterministic.
func collectEscapes(root string, pkgs []string) ([]escapeSite, error) {
	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m -m"}, pkgs...)...)
	cmd.Dir = root
	var errBuf strings.Builder
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags='-m -m' %s: %v\n%s", strings.Join(pkgs, " "), err, errBuf.String())
	}
	return parseEscapes(errBuf.String()), nil
}

// diagRe matches one compiler diagnostic line: file:line:col: message.
var diagRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// parseEscapes extracts the heap-escape sites from a -m -m transcript.
// Under -m -m the compiler prints each escape twice (once with a trailing
// colon introducing the flow trace, once without), so sites are
// de-duplicated on (file, line, col, message).
func parseEscapes(transcript string) []escapeSite {
	var out []escapeSite
	seen := make(map[escapeSite]bool)
	pkg := ""
	for _, ln := range strings.Split(transcript, "\n") {
		if strings.HasPrefix(ln, "# ") {
			pkg = strings.TrimSpace(strings.TrimPrefix(ln, "# "))
			continue
		}
		m := diagRe.FindStringSubmatch(ln)
		if m == nil {
			continue
		}
		msg := strings.TrimSuffix(strings.TrimSpace(m[4]), ":")
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		if strings.HasPrefix(m[1], "<autogenerated>") {
			continue
		}
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		site := escapeSite{pkg: pkg, file: filepath.ToSlash(m[1]), line: line, col: col, msg: msg}
		if !seen[site] {
			seen[site] = true
			out = append(out, site)
		}
	}
	return out
}

// countByFunc attributes each escape to its enclosing function and counts
// per (package, function). Parsed files are cached across sites.
func countByFunc(root string, escapes []escapeSite) map[string]map[string]int {
	counts := make(map[string]map[string]int)
	files := make(map[string]*fileFuncs)
	for _, e := range escapes {
		ff := files[e.file]
		if ff == nil {
			ff = parseFileFuncs(filepath.Join(root, filepath.FromSlash(e.file)))
			files[e.file] = ff
		}
		fn := ff.funcForLine(e.line)
		byFn := counts[e.pkg]
		if byFn == nil {
			byFn = make(map[string]int)
			counts[e.pkg] = byFn
		}
		byFn[fn]++
	}
	return counts
}

// fileFuncs maps line ranges of one source file to function names.
type fileFuncs struct {
	funcs []funcRange
}

type funcRange struct {
	name       string
	start, end int
}

// parseFileFuncs records the line span of every function declaration.
// Parse errors yield an empty table; the sites then attribute to the file
// scope, which still fails the gate rather than hiding the escape.
func parseFileFuncs(path string) *fileFuncs {
	ff := &fileFuncs{}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return ff
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		name := fd.Name.Name
		if fd.Recv != nil && len(fd.Recv.List) > 0 {
			name = recvTypeName(fd.Recv.List[0].Type) + "." + name
		}
		ff.funcs = append(ff.funcs, funcRange{
			name:  name,
			start: fset.Position(fd.Pos()).Line,
			end:   fset.Position(fd.End()).Line,
		})
	}
	return ff
}

// recvTypeName renders a receiver type as its bare type name (stars and
// generic brackets stripped).
func recvTypeName(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(v.X)
	case *ast.IndexExpr:
		return recvTypeName(v.X)
	case *ast.Ident:
		return v.Name
	}
	return "?"
}

// funcForLine names the function containing line, or "(file scope)" for
// escapes in package-level initializers.
func (ff *fileFuncs) funcForLine(line int) string {
	for _, fr := range ff.funcs {
		if fr.start <= line && line <= fr.end {
			return fr.name
		}
	}
	return "(file scope)"
}

// diffBudget compares current counts to the budget. problems are gate
// failures (new or excess escapes); notes are non-failing observations
// (counts below budget, budget entries with no current escapes) suggesting
// the budget can be tightened with -update.
func diffBudget(counts, budget map[string]map[string]int) (problems, notes []string) {
	for _, pkg := range sortedKeys(counts) {
		for _, fn := range sortedKeys(counts[pkg]) {
			got := counts[pkg][fn]
			allowed, budgeted := budget[pkg][fn]
			switch {
			case !budgeted:
				problems = append(problems, fmt.Sprintf("%s.%s: %d heap escape(s) in a function with no budget entry", pkg, fn, got))
			case got > allowed:
				problems = append(problems, fmt.Sprintf("%s.%s: %d heap escape(s), budget allows %d", pkg, fn, got, allowed))
			case got < allowed:
				notes = append(notes, fmt.Sprintf("%s.%s: %d escape(s), below budget %d — consider -update", pkg, fn, got, allowed))
			}
		}
	}
	for _, pkg := range sortedKeys(budget) {
		for _, fn := range sortedKeys(budget[pkg]) {
			if _, ok := counts[pkg][fn]; !ok {
				notes = append(notes, fmt.Sprintf("%s.%s: budgeted %d but no escapes now — consider -update", pkg, fn, budget[pkg][fn]))
			}
		}
	}
	return problems, notes
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func readBudget(path string) (map[string]map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b map[string]map[string]int
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return b, nil
}

func writeBudget(path string, counts map[string]map[string]int) error {
	data, err := json.MarshalIndent(counts, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
