// Command escapebudget pins the compiler's escape-analysis verdict on the
// hot kernel packages. It runs `go build -gcflags='-m -m'` over the hot
// paths, parses the "escapes to heap" / "moved to heap" diagnostics,
// attributes each escape to its enclosing function, and diffs the counts
// against the checked-in escape_budget.json. Any escape in excess of a
// function's budget — in particular any escape in a function with no budget
// entry — fails the gate with exit code 1.
//
// The point is regression-proofing, not zero-escape purism: plan
// construction is SUPPOSED to allocate, and the budget records exactly how
// much. What must never happen silently is a new heap escape creeping into
// a kernel the sync.Pool work de-allocated: the compiler would accept it,
// the tests would pass, and the bandwidth-bound inner loops would start
// paying allocator and GC latency. The budget makes the compiler's own
// escape analysis the reviewer.
//
// Usage:
//
//	escapebudget [-budget escape_budget.json] [-update] [-v] [packages...]
//
// With no packages, the eight hot packages are audited. -update rewrites the
// budget file to match the current tree (use after deliberate changes,
// reviewing the diff). Exit codes: 0 within budget, 1 over budget, 2 usage
// or toolchain failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"soifft/internal/gcbudget"
)

// hotPackages are the audited kernels: the paper's bandwidth-bound compute
// paths (where PR 1 removed hot-loop allocations), the single-node and
// distributed pipeline drivers that orchestrate them per transform, and the
// serving layer's per-frame path (codec + scheduler), whose allocations
// recur per request rather than per plan, plus both ends of the wire: the
// client library's per-request encode/demux path and the daemon binary's
// connection loop.
var hotPackages = []string{
	"./internal/fft",
	"./internal/conv",
	"./internal/cvec",
	"./internal/window",
	"./internal/soi",
	"./internal/dist",
	"./internal/serve",
	"./internal/wire",
	"./internal/codec",
	"./client",
	"./cmd/soifftd",
}

// isEscape keeps the escape-analysis verdicts out of the -m -m chatter
// (inlining decisions, parameter leak classifications, ...).
func isEscape(msg string) bool {
	return strings.Contains(msg, "escapes to heap") || strings.Contains(msg, "moved to heap")
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("escapebudget", flag.ContinueOnError)
	fs.SetOutput(stderr)
	budgetPath := fs.String("budget", "escape_budget.json", "budget file, relative to the module root")
	update := fs.Bool("update", false, "rewrite the budget file to match the current tree")
	verbose := fs.Bool("v", false, "list every escape site")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: escapebudget [flags] [packages...]\n\n")
		fmt.Fprintf(stderr, "Audits heap escapes in the hot kernel packages against %s.\n", *budgetPath)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	pkgs := fs.Args()
	if len(pkgs) == 0 {
		pkgs = hotPackages
	}

	root, err := gcbudget.ModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "escapebudget: %v\n", err)
		return 2
	}

	escapes, err := gcbudget.Collect(root, "-m -m", pkgs, isEscape)
	if err != nil {
		fmt.Fprintf(stderr, "escapebudget: %v\n", err)
		return 2
	}
	counts := gcbudget.CountByFunc(root, escapes)

	if *verbose {
		for _, e := range escapes {
			fmt.Fprintf(stdout, "%s: %s:%d:%d: %s\n", e.Pkg, e.File, e.Line, e.Col, e.Msg)
		}
	}

	path := *budgetPath
	if !filepath.IsAbs(path) {
		path = filepath.Join(root, path)
	}
	if *update {
		if err := gcbudget.WriteBudget(path, counts); err != nil {
			fmt.Fprintf(stderr, "escapebudget: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "escapebudget: wrote %s (%d packages)\n", *budgetPath, len(counts))
		return 0
	}

	budget, err := gcbudget.ReadBudget(path)
	if err != nil {
		fmt.Fprintf(stderr, "escapebudget: %v (run with -update to create it)\n", err)
		return 2
	}
	problems, notes := gcbudget.DiffBudget(counts, budget, "heap escape(s)")
	for _, n := range notes {
		fmt.Fprintf(stdout, "escapebudget: note: %s\n", n)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(stderr, "escapebudget: FAIL: %s\n", p)
		}
		fmt.Fprintf(stderr, "escapebudget: %d function(s) over budget; if the new escapes are deliberate, re-run with -update and commit the diff\n", len(problems))
		return 1
	}
	fmt.Fprintf(stdout, "escapebudget: ok (%d escape sites within budget across %d packages)\n", len(escapes), len(counts))
	return 0
}
