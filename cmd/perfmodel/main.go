// Command perfmodel evaluates the paper's Section 4 analytic performance
// model for arbitrary cluster configurations:
//
//	perfmodel -nodes 512 -platform phi -alg soi
//	perfmodel -nodes 64 -platform xeon -alg ct -pernode 134217728
//	perfmodel -nodes 32 -platform phi -alg soi -offload
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"soifft/internal/perfmodel"
)

func main() {
	log.SetFlags(0)
	nodes := flag.Int("nodes", 32, "cluster size")
	perNode := flag.Float64("pernode", perfmodel.PerNodeElems, "complex elements per node")
	platform := flag.String("platform", "phi", "xeon | phi")
	alg := flag.String("alg", "soi", "soi | ct")
	segments := flag.Int("segments", 0, "segments per process (0 = paper policy)")
	overlap := flag.Bool("overlap", true, "overlap communication with computation")
	offload := flag.Bool("offload", false, "Section 7 offload mode (SOI on Phi)")
	flag.Parse()

	var p perfmodel.Platform
	switch strings.ToLower(*platform) {
	case "xeon":
		p = perfmodel.Xeon
	case "phi", "xeonphi", "mic":
		p = perfmodel.XeonPhi
	default:
		log.Fatalf("unknown platform %q", *platform)
	}
	var a perfmodel.Algorithm
	switch strings.ToLower(*alg) {
	case "soi":
		a = perfmodel.SOI
	case "ct", "cooley-tukey", "mkl":
		a = perfmodel.CooleyTukey
	default:
		log.Fatalf("unknown algorithm %q", *alg)
	}

	cfg := perfmodel.Default()
	opt := perfmodel.Options{
		Nodes: *nodes, PerNode: *perNode,
		Segments: *segments, Overlap: *overlap, Offload: *offload,
	}
	e := cfg.Estimate(a, p, opt)
	n := *perNode * float64(*nodes)
	fmt.Printf("%s on %d %s nodes, %.0f elements/node:\n", a, *nodes, p, *perNode)
	fmt.Printf("  local FFT    : %8.3f s\n", e.LocalFFT)
	fmt.Printf("  convolution  : %8.3f s\n", e.Conv)
	fmt.Printf("  MPI (raw)    : %8.3f s\n", e.MPI)
	fmt.Printf("  MPI (exposed): %8.3f s\n", e.ExposedMPI)
	fmt.Printf("  etc.         : %8.3f s\n", e.Etc)
	fmt.Printf("  total        : %8.3f s  =>  %.2f TFLOPS\n", e.Total, e.TFLOPS(n))
}
