package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"soifft/internal/analysis"
)

// TestTimingViolations pins the three violation shapes of the hard timing
// gate: over budget, selected-but-unbudgeted, and stale budget keys.
func TestTimingViolations(t *testing.T) {
	fast := &analysis.Analyzer{Name: "fast"}
	slow := &analysis.Analyzer{Name: "slow"}
	known := []*analysis.Analyzer{fast, slow}
	elapsed := map[string]time.Duration{
		"fast": 5 * time.Millisecond,
		"slow": 250 * time.Millisecond,
	}

	if v := timingViolations(map[string]int64{"fast": 100, "slow": 300}, known, known, elapsed); len(v) != 0 {
		t.Errorf("clean budget produced violations: %v", v)
	}

	v := timingViolations(map[string]int64{"fast": 100, "slow": 200}, known, known, elapsed)
	if len(v) != 1 || !strings.Contains(v[0], "slow took 250ms") || !strings.Contains(v[0], "200ms budget") {
		t.Errorf("over-budget check: %v", v)
	}

	v = timingViolations(map[string]int64{"fast": 100}, known, known, elapsed)
	if len(v) != 1 || !strings.Contains(v[0], "slow has no budget entry") {
		t.Errorf("missing entry: %v", v)
	}

	v = timingViolations(map[string]int64{"fast": 100, "slow": 300, "ghost": 50}, known, known, elapsed)
	if len(v) != 1 || !strings.Contains(v[0], `"ghost" names no known check`) {
		t.Errorf("stale key: %v", v)
	}

	// A -checks subset must not treat the other analyzers' entries as
	// stale: unknown means unknown to the whole suite, not unselected.
	v = timingViolations(map[string]int64{"fast": 100, "slow": 300}, []*analysis.Analyzer{fast}, known, elapsed)
	if len(v) != 0 {
		t.Errorf("subset run flagged sibling budget entries: %v", v)
	}

	// Violations are stable-ordered: selected-order first, stale keys
	// sorted after.
	v = timingViolations(map[string]int64{"slow": 200, "zz": 1, "aa": 1}, known, known, elapsed)
	want := []string{"fast has no budget entry", "slow took 250ms", `"aa"`, `"zz"`}
	if len(v) != 4 {
		t.Fatalf("combined violations: %v", v)
	}
	for i, w := range want {
		if !strings.Contains(v[i], w) {
			t.Errorf("violation %d = %q, want mention of %s", i, v[i], w)
		}
	}
}

func TestLoadTimingBudget(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "budget.json")
	if err := os.WriteFile(path, []byte(`{"hotalloc": 1000, "errdrop": 500}`), 0o644); err != nil {
		t.Fatal(err)
	}
	budget, err := loadTimingBudget(path)
	if err != nil {
		t.Fatal(err)
	}
	if budget["hotalloc"] != 1000 || budget["errdrop"] != 500 {
		t.Errorf("parsed budget %v", budget)
	}
	if _, err := loadTimingBudget(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if err := os.WriteFile(path, []byte(`{"hotalloc": "fast"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTimingBudget(path); err == nil {
		t.Error("non-numeric budget accepted")
	}
}

// TestCheckedInBudgetCoversSuite: the repo-root timing_budget.json (the
// CI contract passed via -timing-budget-file in check.sh) must budget
// exactly the current analyzer suite — a new analyzer must land with a
// budget entry, a removed one must take its entry along.
func TestCheckedInBudgetCoversSuite(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "timing_budget.json"))
	if err != nil {
		t.Fatal(err)
	}
	budget := make(map[string]int64)
	if err := json.Unmarshal(data, &budget); err != nil {
		t.Fatal(err)
	}
	// Zero elapsed: any violation is structural (missing/stale entries),
	// not a timing measurement.
	v := timingViolations(budget, analysis.All, analysis.All, map[string]time.Duration{})
	if len(v) != 0 {
		t.Errorf("checked-in timing_budget.json out of sync with the suite: %v", v)
	}
	for name, ms := range budget {
		if ms <= 0 {
			t.Errorf("budget entry %s is %dms; budgets must be positive", name, ms)
		}
	}
}
