package main

// Minimal SARIF 2.1.0 serialization of soilint findings, enough for GitHub
// code scanning to annotate PRs inline. Only active findings are exported:
// suppressed findings carry an in-tree justification already, and notes are
// informational.

import (
	"encoding/json"
	"io"
	"path/filepath"

	"soifft/internal/analysis"
)

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders the findings of the selected analyzers as one SARIF
// run. File paths are emitted slash-separated (SARIF URIs), relative to the
// module root when relativize already made them so.
func writeSARIF(w io.Writer, analyzers []*analysis.Analyzer, findings []analysis.Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, d := range findings {
		results = append(results, sarifResult{
			RuleID:  d.Check,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(d.File)},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "soilint", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
