// Soilint runs the repo-native static analyzers over soifft packages: the
// performance-programming discipline of the paper (no hot-path allocation,
// precomputed twiddles, no dropped communicator errors, race-free parallel
// bodies) enforced mechanically. See internal/analysis for the checks.
//
// Usage:
//
//	soilint [-json] [-sarif] [-stats] [-timing] [-checks hotalloc,errdrop,...] [-v] [packages]
//
// Packages default to ./... relative to the enclosing module root. Exit
// status: 0 clean, 1 findings, 2 usage or load failure. -sarif emits SARIF
// 2.1.0 (for CI code-scanning upload) instead of the plain listing; -stats
// emits per-check active/suppressed counts plus per-check wall time as JSON
// (the CI lint-trend artifact); like -json both still exit 1 on findings.
// -timing prints a per-analyzer wall-time table to stderr and warns when
// any analyzer exceeds -timing-budget (default 30s) summed over all
// packages — a soft budget: the exit status is unaffected.
// -timing-budget-file names a JSON map of check name to maximum wall time
// in milliseconds and is a hard gate: an analyzer over its budget, a
// selected analyzer with no entry, or an entry naming no known analyzer
// all fail the run with exit 1 (the checked-in timing_budget.json is the
// CI contract; widen it deliberately in review, like the escape budget).
// Findings are suppressed line-by-line
// with a justified "//soilint:ignore <check>" comment on the offending line
// or the line above, or file-wide with "//soilint:file-ignore <check> --
// <reason>" at the top of the file (the reason is mandatory). Analyzer
// notes (shapecheck's "unprovable" outcomes) are informational only and
// print under -v.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"soifft/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	statsOut := flag.Bool("stats", false, "emit per-check active/suppressed counts and wall time as JSON")
	checks := flag.String("checks", "", "comma-separated checks to run (default: all)")
	verbose := flag.Bool("v", false, "also list suppressed findings, analyzer notes and type-check warnings")
	timing := flag.Bool("timing", false, "print a per-analyzer wall-time table to stderr")
	timingBudget := flag.Duration("timing-budget", 30*time.Second, "warn (without failing) when one analyzer exceeds this much total wall time")
	timingBudgetFile := flag.String("timing-budget-file", "", "JSON map of check name to max wall time in ms; a hard gate: over budget, a selected check with no entry, or an unknown entry exits 1")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: soilint [-json] [-sarif] [-stats] [-timing] [-checks list] [-v] [packages]\navailable checks:\n")
		for _, a := range analysis.All {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers, err := analysis.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soilint:", err)
		return 2
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "soilint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soilint:", err)
		return 2
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soilint:", err)
		return 2
	}

	active, suppressed, notes := []analysis.Diagnostic{}, []analysis.Diagnostic{}, []analysis.Diagnostic{}
	elapsed := make(map[string]time.Duration, len(analyzers))
	for _, pkg := range pkgs {
		if *verbose {
			for _, te := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "soilint: typecheck %s: %v\n", pkg.Path, te)
			}
		}
		a, s, n := analysis.RunTimed(pkg, analyzers, elapsed)
		active = append(active, a...)
		suppressed = append(suppressed, s...)
		notes = append(notes, n...)
	}
	relativize(root, active)
	relativize(root, suppressed)
	relativize(root, notes)

	if *timing {
		writeTimingTable(os.Stderr, analyzers, elapsed)
	}
	for _, a := range analyzers {
		if d := elapsed[a.Name]; d > *timingBudget {
			fmt.Fprintf(os.Stderr, "soilint: warning: %s took %v across all packages, over the %v budget\n", a.Name, d.Round(time.Millisecond), *timingBudget)
		}
	}
	budgetFailed := false
	if *timingBudgetFile != "" {
		budget, err := loadTimingBudget(*timingBudgetFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "soilint:", err)
			return 2
		}
		for _, v := range timingViolations(budget, analyzers, analysis.All, elapsed) {
			fmt.Fprintf(os.Stderr, "soilint: timing budget: %s\n", v)
			budgetFailed = true
		}
	}

	switch {
	case *statsOut:
		if err := writeStats(os.Stdout, analyzers, active, suppressed, elapsed); err != nil {
			fmt.Fprintln(os.Stderr, "soilint:", err)
			return 2
		}
	case *sarifOut:
		if err := writeSARIF(os.Stdout, analyzers, active); err != nil {
			fmt.Fprintln(os.Stderr, "soilint:", err)
			return 2
		}
	case *jsonOut:
		out := struct {
			Findings   []analysis.Diagnostic `json:"findings"`
			Suppressed []analysis.Diagnostic `json:"suppressed"`
		}{Findings: active, Suppressed: suppressed}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "soilint:", err)
			return 2
		}
	default:
		for _, d := range active {
			fmt.Println(d)
		}
		if *verbose {
			for _, d := range suppressed {
				fmt.Printf("%s (suppressed)\n", d)
			}
			for _, d := range notes {
				fmt.Printf("%s (note)\n", d)
			}
		}
	}
	if len(active) > 0 {
		if !*jsonOut && !*statsOut {
			fmt.Fprintf(os.Stderr, "soilint: %d finding(s)\n", len(active))
		}
		return 1
	}
	if budgetFailed {
		return 1
	}
	return 0
}

// loadTimingBudget reads a JSON object mapping check name to its maximum
// wall time in milliseconds (the checked-in timing_budget.json).
func loadTimingBudget(path string) (map[string]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("timing budget: %w", err)
	}
	budget := make(map[string]int64)
	if err := json.Unmarshal(data, &budget); err != nil {
		return nil, fmt.Errorf("timing budget %s: %w", path, err)
	}
	return budget, nil
}

// timingViolations audits measured analyzer wall time against a hard
// budget. Three shapes violate: a selected analyzer over its budget, a
// selected analyzer with no entry (a new check must be budgeted when it
// lands, exactly as a new function must be budgeted in the escape gate),
// and an entry naming no known analyzer (a stale or misspelled key would
// otherwise rot the gate silently). Messages are stable-ordered so CI
// logs diff cleanly.
func timingViolations(budget map[string]int64, selected, known []*analysis.Analyzer, elapsed map[string]time.Duration) []string {
	var v []string
	for _, a := range selected {
		ms, ok := budget[a.Name]
		if !ok {
			v = append(v, fmt.Sprintf("check %s has no budget entry; add one to the budget file", a.Name))
			continue
		}
		if got := elapsed[a.Name].Milliseconds(); got > ms {
			v = append(v, fmt.Sprintf("check %s took %dms across all packages, over its %dms budget", a.Name, got, ms))
		}
	}
	names := make(map[string]bool, len(known))
	for _, a := range known {
		names[a.Name] = true
	}
	stale := make([]string, 0, len(budget))
	for key := range budget {
		if !names[key] {
			stale = append(stale, key)
		}
	}
	sort.Strings(stale)
	for _, key := range stale {
		v = append(v, fmt.Sprintf("budget entry %q names no known check; remove it", key))
	}
	return v
}

// checkStats is one row of the -stats output. WallMS is the analyzer's
// total execution time across every analyzed package, in milliseconds, so
// successive CI artifacts trend analyzer cost alongside finding counts.
type checkStats struct {
	Active     int   `json:"active"`
	Suppressed int   `json:"suppressed"`
	WallMS     int64 `json:"wall_ms"`
}

// writeStats emits per-check finding counts and wall time as JSON. Every
// selected check gets a row, zeros included, so successive CI trend
// artifacts diff cleanly even when a check goes quiet.
func writeStats(w io.Writer, analyzers []*analysis.Analyzer, active, suppressed []analysis.Diagnostic, elapsed map[string]time.Duration) error {
	checks := make(map[string]*checkStats, len(analyzers))
	for _, a := range analyzers {
		checks[a.Name] = &checkStats{WallMS: elapsed[a.Name].Milliseconds()}
	}
	var total checkStats
	for _, d := range active {
		if c := checks[d.Check]; c != nil {
			c.Active++
		}
		total.Active++
	}
	for _, d := range suppressed {
		if c := checks[d.Check]; c != nil {
			c.Suppressed++
		}
		total.Suppressed++
	}
	for _, c := range checks {
		total.WallMS += c.WallMS
	}
	out := struct {
		Total  checkStats             `json:"total"`
		Checks map[string]*checkStats `json:"checks"`
	}{Total: total, Checks: checks}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeTimingTable prints per-analyzer wall time, slowest first.
func writeTimingTable(w io.Writer, analyzers []*analysis.Analyzer, elapsed map[string]time.Duration) {
	rows := make([]*analysis.Analyzer, len(analyzers))
	copy(rows, analyzers)
	sort.SliceStable(rows, func(i, j int) bool {
		return elapsed[rows[i].Name] > elapsed[rows[j].Name]
	})
	var total time.Duration
	for _, a := range rows {
		total += elapsed[a.Name]
	}
	fmt.Fprintf(w, "soilint: analyzer wall time (all packages)\n")
	for _, a := range rows {
		fmt.Fprintf(w, "  %-13s %8.1fms\n", a.Name, float64(elapsed[a.Name].Microseconds())/1000)
	}
	fmt.Fprintf(w, "  %-13s %8.1fms\n", "total", float64(total.Microseconds())/1000)
}

// relativize rewrites absolute file paths relative to the module root for
// stable, readable output.
func relativize(root string, ds []analysis.Diagnostic) {
	for i := range ds {
		if rel, err := filepath.Rel(root, ds[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			ds[i].File = rel
		}
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
