// Soilint runs the repo-native static analyzers over soifft packages: the
// performance-programming discipline of the paper (no hot-path allocation,
// precomputed twiddles, no dropped communicator errors, race-free parallel
// bodies) enforced mechanically. See internal/analysis for the checks.
//
// Usage:
//
//	soilint [-json] [-sarif] [-stats] [-checks hotalloc,errdrop,...] [-v] [packages]
//
// Packages default to ./... relative to the enclosing module root. Exit
// status: 0 clean, 1 findings, 2 usage or load failure. -sarif emits SARIF
// 2.1.0 (for CI code-scanning upload) instead of the plain listing; -stats
// emits per-check active/suppressed counts as JSON (the CI lint-trend
// artifact); like -json both still exit 1 on findings. Findings are
// suppressed line-by-line
// with a justified "//soilint:ignore <check>" comment on the offending line
// or the line above, or file-wide with "//soilint:file-ignore <check> --
// <reason>" at the top of the file (the reason is mandatory). Analyzer
// notes (shapecheck's "unprovable" outcomes) are informational only and
// print under -v.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"soifft/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	statsOut := flag.Bool("stats", false, "emit per-check active/suppressed counts as JSON")
	checks := flag.String("checks", "", "comma-separated checks to run (default: all)")
	verbose := flag.Bool("v", false, "also list suppressed findings, analyzer notes and type-check warnings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: soilint [-json] [-sarif] [-stats] [-checks list] [-v] [packages]\navailable checks:\n")
		for _, a := range analysis.All {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers, err := analysis.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soilint:", err)
		return 2
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "soilint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soilint:", err)
		return 2
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soilint:", err)
		return 2
	}

	active, suppressed, notes := []analysis.Diagnostic{}, []analysis.Diagnostic{}, []analysis.Diagnostic{}
	for _, pkg := range pkgs {
		if *verbose {
			for _, te := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "soilint: typecheck %s: %v\n", pkg.Path, te)
			}
		}
		a, s, n := analysis.Run(pkg, analyzers)
		active = append(active, a...)
		suppressed = append(suppressed, s...)
		notes = append(notes, n...)
	}
	relativize(root, active)
	relativize(root, suppressed)
	relativize(root, notes)

	switch {
	case *statsOut:
		if err := writeStats(os.Stdout, analyzers, active, suppressed); err != nil {
			fmt.Fprintln(os.Stderr, "soilint:", err)
			return 2
		}
	case *sarifOut:
		if err := writeSARIF(os.Stdout, analyzers, active); err != nil {
			fmt.Fprintln(os.Stderr, "soilint:", err)
			return 2
		}
	case *jsonOut:
		out := struct {
			Findings   []analysis.Diagnostic `json:"findings"`
			Suppressed []analysis.Diagnostic `json:"suppressed"`
		}{Findings: active, Suppressed: suppressed}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "soilint:", err)
			return 2
		}
	default:
		for _, d := range active {
			fmt.Println(d)
		}
		if *verbose {
			for _, d := range suppressed {
				fmt.Printf("%s (suppressed)\n", d)
			}
			for _, d := range notes {
				fmt.Printf("%s (note)\n", d)
			}
		}
	}
	if len(active) > 0 {
		if !*jsonOut && !*statsOut {
			fmt.Fprintf(os.Stderr, "soilint: %d finding(s)\n", len(active))
		}
		return 1
	}
	return 0
}

// checkStats is one row of the -stats output.
type checkStats struct {
	Active     int `json:"active"`
	Suppressed int `json:"suppressed"`
}

// writeStats emits per-check finding counts as JSON. Every selected check
// gets a row, zeros included, so successive CI trend artifacts diff cleanly
// even when a check goes quiet.
func writeStats(w io.Writer, analyzers []*analysis.Analyzer, active, suppressed []analysis.Diagnostic) error {
	checks := make(map[string]*checkStats, len(analyzers))
	for _, a := range analyzers {
		checks[a.Name] = &checkStats{}
	}
	var total checkStats
	for _, d := range active {
		if c := checks[d.Check]; c != nil {
			c.Active++
		}
		total.Active++
	}
	for _, d := range suppressed {
		if c := checks[d.Check]; c != nil {
			c.Suppressed++
		}
		total.Suppressed++
	}
	out := struct {
		Total  checkStats             `json:"total"`
		Checks map[string]*checkStats `json:"checks"`
	}{Total: total, Checks: checks}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// relativize rewrites absolute file paths relative to the module root for
// stable, readable output.
func relativize(root string, ds []analysis.Diagnostic) {
	for i := range ds {
		if rel, err := filepath.Rel(root, ds[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			ds[i].File = rel
		}
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
