// Command kernelbench measures the FFT kernel backends (internal/fft
// kernel.go): the interleaved-complex AoS kernels against the split-plane
// SoA kernels, on the same plans and the same AoS-facing API, at the
// Figure-11 geometry sizes. One cell per (engine, backend, size); the
// metric is GFLOPS under the standard 5*n*log2(n) complex-FFT flop count,
// so "SoA ahead of AoS" means real throughput, not a flop-count trick.
//
// Engines:
//
//	6step    SixStepOpt with a forced backend — the hot path of the local
//	         large FFT (soi M'-transform and the server's exact path)
//	plan     the plain Stockham pipeline, single transform
//	lane     the lane-interleaved batch kernel at 8 lanes of n/8, the
//	         serving executor's shape
//
// The output is one JSON document on stdout; scripts/bench_kernels.sh
// wraps it into BENCH_kernels.json with host metadata and the headline
// speedups.
//
//	kernelbench -sizes 28672,458752 -duration 2s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"soifft/internal/cvec"
	"soifft/internal/fft"
	"soifft/internal/ref"
)

type cell struct {
	Engine  string  `json:"engine"`
	Backend string  `json:"backend"`
	N       int     `json:"n"`
	Lanes   int     `json:"lanes,omitempty"`
	Reps    int     `json:"reps"`
	WallS   float64 `json:"wall_s"`
	GFLOPS  float64 `json:"gflops"`
	RelErr  float64 `json:"rel_err_vs_aos"`
}

type doc struct {
	Bench    string            `json:"bench"`
	Sizes    []int             `json:"sizes"`
	Workers  int               `json:"workers"`
	Cells    []cell            `json:"cells"`
	Headline map[string]string `json:"headline"`
}

// fftFlops is the textbook complex-FFT operation count.
func fftFlops(n int) float64 {
	return 5 * float64(n) * math.Log2(float64(n))
}

// measure runs fn until the budget elapses (at least 3 reps) and returns
// reps and wall time.
func measure(budget time.Duration, fn func()) (int, float64) {
	fn() // warm pools and lazy tables
	reps := 0
	start := time.Now()
	for {
		fn()
		reps++
		if d := time.Since(start); d >= budget && reps >= 3 {
			return reps, d.Seconds()
		}
	}
}

// measurePair benchmarks two backends of one engine as interleaved rounds
// (A, B, A, B, ...) and keeps each backend's best round. Interleaving makes
// machine drift hit both backends alike instead of whichever happened to
// run during the noisy window, and best-of-k approximates the quiet-machine
// number — the per-cell budget is split across the rounds so total wall
// time matches a single-round run.
func measurePair(budget time.Duration, rounds int, a, b func()) (repsA int, wallA float64, repsB int, wallB float64) {
	per := budget / time.Duration(rounds)
	bestA, bestB := 0.0, 0.0
	for i := 0; i < rounds; i++ {
		r, w := measure(per, a)
		if gf := float64(r) / w; gf > bestA {
			bestA, repsA, wallA = gf, r, w
		}
		r, w = measure(per, b)
		if gf := float64(r) / w; gf > bestB {
			bestB, repsB, wallB = gf, r, w
		}
	}
	return repsA, wallA, repsB, wallB
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("kernelbench: ")
	sizesFlag := flag.String("sizes", "28672,458752", "comma-separated transform sizes (Fig-11 geometry: S^2*7*64)")
	duration := flag.Duration("duration", 2*time.Second, "time budget per cell")
	workers := flag.Int("workers", 0, "workers for the 6-step cells (0 = GOMAXPROCS)")
	lanes := flag.Int("lanes", 8, "lane width of the lane-batch cells")
	rounds := flag.Int("rounds", 3, "interleaved AoS/SoA rounds per cell (best round reported)")
	flag.Parse()
	if *rounds < 1 {
		*rounds = 1
	}

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		log.Fatalf("bad -sizes: %v", err)
	}

	d := doc{Bench: "kernels", Sizes: sizes, Headline: map[string]string{}}
	for _, n := range sizes {
		src := ref.RandomVector(n, int64(n))
		dst := make([]complex128, n)

		// 6-step, both backends on the identical AoS-facing call. The
		// SoA output is cross-checked against the AoS output (the oracle
		// suite is the real correctness gate; this guards against
		// benchmarking a broken build).
		sAoS, err := fft.NewSixStepBackend(n, fft.SixStepOpt, *workers, fft.BackendAoS)
		if err != nil {
			log.Fatalf("NewSixStepBackend(%d, opt, aos): %v", n, err)
		}
		sSoA, err := fft.NewSixStepBackend(n, fft.SixStepOpt, *workers, fft.BackendSoA)
		if err != nil {
			log.Fatalf("NewSixStepBackend(%d, opt, soa): %v", n, err)
		}
		dst2 := make([]complex128, n)
		sAoS.Forward(dst, src)
		sSoA.Forward(dst2, src)
		err6 := cvec.RelErrL2(dst2, dst)
		repsA, wallA, repsB, wallB := measurePair(*duration, *rounds,
			func() { sAoS.Forward(dst, src) },
			func() { sSoA.Forward(dst2, src) })
		emit := func(engine string, ln, lanes int, flops float64, repsA int, wallA float64, repsB int, wallB float64, relErr float64) {
			ca := cell{Engine: engine, Backend: "aos", N: ln, Lanes: lanes, Reps: repsA, WallS: wallA,
				GFLOPS: flops * float64(repsA) / wallA / 1e9}
			cb := cell{Engine: engine, Backend: "soa", N: ln, Lanes: lanes, Reps: repsB, WallS: wallB,
				GFLOPS: flops * float64(repsB) / wallB / 1e9, RelErr: relErr}
			d.Cells = append(d.Cells, ca, cb)
			d.Headline[fmt.Sprintf("%s_soa_over_aos_n%d", engine, n)] = fmt.Sprintf("%.3f", cb.GFLOPS/ca.GFLOPS)
			lane := ""
			if lanes > 0 {
				lane = fmt.Sprintf("x%d", lanes)
			}
			fmt.Fprintf(os.Stderr, "   %s n=%d%s: aos %.2f / soa %.2f GFLOPS (%d/%d reps, best of %d rounds)\n",
				engine, ln, lane, ca.GFLOPS, cb.GFLOPS, repsA, repsB, *rounds)
		}
		emit("6step", n, 0, fftFlops(n), repsA, wallA, repsB, wallB, err6)

		// Plain Stockham plan, single transform, one goroutine.
		p := fft.MustPlan(n)
		ss, ds := cvec.FromComplex(src), cvec.NewSoA(n)
		p.Forward(dst, src)
		p.ForwardSoA(ds, ss)
		errP := cvec.RelErrL2(ds.ToComplex(), dst)
		repsA, wallA, repsB, wallB = measurePair(*duration, *rounds,
			func() { p.Forward(dst, src) },
			func() { p.ForwardSoA(ds, ss) })
		emit("plan", n, 0, fftFlops(n), repsA, wallA, repsB, wallB, errP)

		// Lane-interleaved batch: `lanes` transforms of n/lanes (the
		// serving executor's shape), total elements == n.
		ln := n / *lanes
		if ln >= 2 {
			lb, err := fft.NewLaneBatch(ln, *lanes)
			if err != nil {
				log.Printf("lane cell skipped: %v", err)
				continue
			}
			flops := float64(*lanes) * fftFlops(ln)
			buf := append([]complex128(nil), src...)
			sb := cvec.FromComplex(src)
			// In-place transforms: correctness here is the oracle suite's
			// job (TestKernelOracleLaneBatch); RelErr is left zero.
			repsA, wallA, repsB, wallB = measurePair(*duration, *rounds,
				func() { lb.Forward(buf) },
				func() { lb.ForwardSoA(sb) })
			emit("lane", ln, *lanes, flops, repsA, wallA, repsB, wallB, 0)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		log.Fatal(err)
	}
}
