// Command codecbench measures the payload codecs (internal/codec) on
// representative traffic: compression ratio, encode/decode throughput and
// round-trip error per codec on smooth and noise signals at the Figure-11
// transform sizes, plus the end-to-end cost of compressing the distributed
// all-to-all (mpi.WithCodec around mpi.AllToAll — the P_erm exchange of
// Equation 1, which is what the codecs exist to shrink).
//
// The output is one JSON document on stdout; scripts/bench_codec.sh runs
// this together with the serving-layer and distributed-SOI cells and
// assembles BENCH_codec.json.
//
//	codecbench -sizes 28672,458752 -tol 2.1e-8 -ranks 4
//
// The default tolerance is the paper configuration's designed alias bound
// (mu=8/7, B=72: 2.1e-8), so the quant cell answers the question the lossy
// codec is for: what does compression cost when its error budget is the
// accuracy the transform already gave up by design?
package main

import (
	"encoding/json"
	"flag"
	"log"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"soifft/internal/codec"
	"soifft/internal/mpi"
)

// cell is one block-stream measurement: a codec applied to one signal at
// one size.
type cell struct {
	Codec     string  `json:"codec"`
	Signal    string  `json:"signal"`
	N         int     `json:"n"`
	RawBytes  int     `json:"raw_bytes"`
	EncBytes  int     `json:"encoded_bytes"`
	Ratio     float64 `json:"ratio"`
	EncodeMBs float64 `json:"encode_mb_s"`
	DecodeMBs float64 `json:"decode_mb_s"`
	MaxRelErr float64 `json:"max_rel_err"`
}

// a2aCell is one distributed all-to-all measurement: every rank exchanges
// its smooth per-peer blocks through mpi.WithCodec over the in-process
// transport. On loopback the wire is free, so wall time isolates the codec
// CPU cost; the ratio says what a bandwidth-bound fabric would save.
type a2aCell struct {
	Codec   string  `json:"codec"`
	Ranks   int     `json:"ranks"`
	Elems   int     `json:"elems_per_rank"`
	WallS   float64 `json:"wall_s"`
	ElemsPS float64 `json:"elems_per_s"`
	Ratio   float64 `json:"ratio"`
}

type report struct {
	Bench    string    `json:"bench"`
	Tol      float64   `json:"tol"`
	Sizes    []int     `json:"sizes"`
	Cells    []cell    `json:"cells"`
	AllToAll []a2aCell `json:"alltoall"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("codecbench: ")
	sizesStr := flag.String("sizes", "28672,458752", "comma-separated vector lengths (defaults: Fig-11 geometry S^2*7*64 for S=8,32)")
	tol := flag.Float64("tol", 2.1e-8, "quant codec per-element tolerance (paper bound for mu=8/7, B=72)")
	ranks := flag.Int("ranks", 4, "world size for the all-to-all cell")
	a2aElems := flag.Int("alltoall-elems", 458752, "elements per rank in the all-to-all cell")
	seed := flag.Int64("seed", 1, "signal seed")
	flag.Parse()

	var sizes []int
	for _, f := range strings.Split(*sizesStr, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			log.Fatalf("bad -sizes entry %q", f)
		}
		sizes = append(sizes, n)
	}

	codecs := []codec.Codec{
		codec.MustFor(codec.Identity, 0),
		codec.MustFor(codec.DeltaPlane, 0),
		mustQuant(*tol),
	}

	rep := report{Bench: "codecbench", Tol: *tol, Sizes: sizes}
	for _, n := range sizes {
		signals := []struct {
			name string
			x    []complex128
		}{
			{"smooth", smoothVector(n, *seed)},
			{"noise", noiseVector(n, *seed)},
		}
		for _, sig := range signals {
			for _, c := range codecs {
				rep.Cells = append(rep.Cells, measure(c, sig.name, sig.x))
			}
		}
	}
	for _, c := range codecs {
		rep.AllToAll = append(rep.AllToAll, measureAllToAll(c, *ranks, *a2aElems, *seed))
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
}

func mustQuant(tol float64) codec.Codec {
	c, err := codec.NewQuant(tol)
	if err != nil {
		log.Fatalf("-tol: %v", err)
	}
	return c
}

// smoothVector is a bandlimited signal: a handful of low-frequency modes
// with random amplitudes and phases — the compressible regime the SOI
// exchange lives in (oversampled subband spectra vary slowly from sample
// to sample).
func smoothVector(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	const modes = 8
	freq := make([]float64, modes)
	amp := make([]float64, modes)
	ph := make([]float64, modes)
	for m := range freq {
		freq[m] = float64(m + 1)
		amp[m] = 0.5 + rng.Float64()
		ph[m] = 2 * math.Pi * rng.Float64()
	}
	x := make([]complex128, n)
	for t := range x {
		var re, im float64
		for m := 0; m < modes; m++ {
			a := 2*math.Pi*freq[m]*float64(t)/float64(n) + ph[m]
			re += amp[m] * math.Cos(a)
			im += amp[m] * math.Sin(a)
		}
		x[t] = complex(re, im)
	}
	return x
}

// noiseVector is the incompressible reference point: i.i.d. Gaussian
// components, every mantissa bit live.
func noiseVector(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed ^ 0x5f5f))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// measure encodes and decodes x enough times for a stable rate and reports
// ratio, throughput (raw MB/s of payload processed) and the worst
// per-component relative round-trip error.
func measure(c codec.Codec, signal string, x []complex128) cell {
	raw := 16 * len(x)
	enc := codec.AppendVector(nil, c, x)
	dst := make([]complex128, len(x))
	if err := codec.DecodeVector(dst, c, enc); err != nil {
		log.Fatalf("%s/%s: decode: %v", c.Name(), signal, err)
	}

	encRate := rate(raw, func() {
		enc = codec.AppendVector(enc[:0], c, x)
	})
	decRate := rate(raw, func() {
		if err := codec.DecodeVector(dst, c, enc); err != nil {
			log.Fatalf("%s/%s: decode: %v", c.Name(), signal, err)
		}
	})

	return cell{
		Codec:     c.Name(),
		Signal:    signal,
		N:         len(x),
		RawBytes:  raw,
		EncBytes:  len(enc),
		Ratio:     float64(raw) / float64(len(enc)),
		EncodeMBs: encRate,
		DecodeMBs: decRate,
		MaxRelErr: maxRelErr(dst, x),
	}
}

// rate runs fn until at least 100 ms has elapsed and returns raw-payload
// MB/s (1e6 bytes per MB).
func rate(rawBytes int, fn func()) float64 {
	reps := 0
	start := time.Now()
	for {
		fn()
		reps++
		if d := time.Since(start); d >= 100*time.Millisecond {
			return float64(rawBytes) * float64(reps) / d.Seconds() / 1e6
		}
	}
}

// maxRelErr is the worst per-component relative error — the quantity the
// quant codec bounds by its tolerance. Exact zeros compare absolutely.
func maxRelErr(got, want []complex128) float64 {
	worst := 0.0
	comp := func(g, w float64) {
		e := math.Abs(g - w)
		if w != 0 {
			e /= math.Abs(w)
		}
		if e > worst {
			worst = e
		}
	}
	for i := range want {
		comp(real(got[i]), real(want[i]))
		comp(imag(got[i]), imag(want[i]))
	}
	return worst
}

// measureAllToAll times the pairwise-exchange all-to-all with every rank's
// traffic routed through mpi.WithCodec. Each rank sends elems/ranks smooth
// elements to every peer; rank 0's wall clock is the cell time.
func measureAllToAll(c codec.Codec, ranks, elems int, seed int64) a2aCell {
	per := elems / ranks
	if per < 1 {
		log.Fatalf("alltoall: %d elems over %d ranks leaves empty blocks", elems, ranks)
	}
	base := smoothVector(per, seed)
	raw := 16 * per
	enc := codec.AppendVector(nil, c, base)

	const reps = 3
	var wall time.Duration
	err := mpi.Run(ranks, func(comm mpi.Comm) error {
		cc := mpi.WithCodec(comm, c)
		send := make([][]complex128, ranks)
		for i := range send {
			send[i] = base
		}
		start := time.Now()
		for r := 0; r < reps; r++ {
			if _, err := mpi.AllToAll(cc, send); err != nil {
				return err
			}
		}
		if comm.Rank() == 0 {
			wall = time.Since(start) / reps
		}
		return nil
	})
	if err != nil {
		log.Fatalf("alltoall/%s: %v", c.Name(), err)
	}
	return a2aCell{
		Codec:   c.Name(),
		Ranks:   ranks,
		Elems:   elems,
		WallS:   wall.Seconds(),
		ElemsPS: float64(elems) / wall.Seconds(),
		Ratio:   float64(raw) / float64(len(enc)),
	}
}
