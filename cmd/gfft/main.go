// Command gfft runs an HPC Challenge G-FFT-style benchmark over the
// in-process cluster: a distributed forward transform of random data, timed
// and scored as 5*N*log2(N)/t GFLOP/s, followed by the distributed inverse
// and the HPCC round-trip residual ||x - x'||_inf / (eps * log2 N).
//
// The paper frames its results against the April 2013 HPCC G-FFT rankings
// (K computer: 205.9 TFLOPS on 81,944 nodes; the paper: 6.7 TFLOPS on 512).
// This driver executes the same protocol at laptop scale, and prints the
// per-node projection for the paper's cluster from the calibrated model.
//
//	gfft -n 114688 -ranks 8
//	gfft -n 114688 -ranks 8 -exact     # Cooley-Tukey baseline (exact)
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"soifft/internal/dist"
	"soifft/internal/mpi"
	"soifft/internal/perfmodel"
	"soifft/internal/ref"
	"soifft/internal/soi"
	"soifft/internal/window"
)

func main() {
	log.SetFlags(0)
	n := flag.Int("n", 7*8*8*32*8, "transform length") // 114688
	ranks := flag.Int("ranks", 8, "in-process ranks")
	segments := flag.Int("segments", 8, "SOI segments")
	b := flag.Int("b", 72, "convolution width")
	exact := flag.Bool("exact", false, "run the Cooley-Tukey baseline instead of SOI")
	flag.Parse()

	algo := "SOI"
	if *exact {
		algo = "Cooley-Tukey"
	}
	fmt.Printf("G-FFT: %s, N=%d, %d ranks\n", algo, *n, *ranks)

	x := ref.RandomVector(*n, 2013)
	localN := *n / *ranks
	fwd := make([]complex128, *n)
	back := make([]complex128, *n)

	// Plan once (the window design dominates planning); all ranks share it.
	var plan *soi.Plan
	if !*exact {
		p := window.Params{N: *n, Segments: *segments, NMu: 8, DMu: 7, B: *b}
		var err error
		planStart := time.Now()
		plan, err = soi.NewPlan(p, soi.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  planning: %v (shared across ranks and transforms)\n", time.Since(planStart).Round(time.Millisecond))
	}

	runDist := func(out []complex128, in []complex128, inverse bool) time.Duration {
		var mu sync.Mutex
		start := time.Now()
		err := mpi.Run(*ranks, func(c mpi.Comm) error {
			r := c.Rank()
			dst := make([]complex128, localN)
			src := in[r*localN : (r+1)*localN]
			if *exact {
				ct, err := dist.NewCT(c, *n, 0)
				if err != nil {
					return err
				}
				if inverse {
					// Conjugation identity around the forward baseline.
					cc := make([]complex128, localN)
					for i, v := range src {
						cc[i] = complex(real(v), -imag(v))
					}
					if err := ct.Forward(dst, cc); err != nil {
						return err
					}
					inv := 1 / float64(*n)
					for i, v := range dst {
						dst[i] = complex(real(v)*inv, -imag(v)*inv)
					}
				} else if err := ct.Forward(dst, src); err != nil {
					return err
				}
			} else {
				d, err := dist.NewSOIFromPlan(c, plan)
				if err != nil {
					return err
				}
				if inverse {
					err = d.Inverse(dst, src)
				} else {
					err = d.Forward(dst, src)
				}
				if err != nil {
					return err
				}
			}
			mu.Lock()
			copy(out[r*localN:], dst)
			mu.Unlock()
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		return time.Since(start)
	}

	tFwd := runDist(fwd, x, false)
	tInv := runDist(back, fwd, true)

	flops := 5 * float64(*n) * math.Log2(float64(*n))
	fmt.Printf("  forward : %10v  %8.3f GFLOP/s\n", tFwd.Round(time.Millisecond), flops/tFwd.Seconds()/1e9)
	fmt.Printf("  inverse : %10v  %8.3f GFLOP/s\n", tInv.Round(time.Millisecond), flops/tInv.Seconds()/1e9)
	res := ref.GFFTResidual(x, back)
	fmt.Printf("  residual: %.3e  (HPCC accepts <16 for exact FFTs;\n", res)
	fmt.Printf("            SOI's designed approximation error dominates instead — see EXPERIMENTS.md)\n")

	// Paper-scale projection from the calibrated model.
	cfg := perfmodel.Default()
	est := cfg.Estimate(perfmodel.SOI, perfmodel.XeonPhi,
		perfmodel.Options{Nodes: 512, PerNode: perfmodel.PerNodeElems, Overlap: true})
	nBig := perfmodel.PerNodeElems * 512
	fmt.Printf("paper-scale projection: %.2f TFLOPS on 512 Xeon Phi nodes (%.1fx the K computer's\n",
		est.TFLOPS(nBig), est.TFLOPS(nBig)/512/(205.9/81944))
	fmt.Printf("  %.4f TFLOPS/node; K computer: 205.9 TFLOPS / 81944 nodes)\n", 205.9/81944)
}
