// Command soifft runs a distributed SOI FFT over an in-process cluster and
// verifies it against the library's exact serial FFT.
//
//	soifft -n 3584 -ranks 4 -segments 8
//	soifft -n 100352 -ranks 8 -segments 16 -b 72 -mu 8/7 -baseline
//
// With -baseline it also runs the distributed Cooley-Tukey FFT (three
// all-to-alls) on the same input for comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"soifft/internal/cvec"
	"soifft/internal/dist"
	"soifft/internal/fft"
	"soifft/internal/mpi"
	"soifft/internal/ref"
	"soifft/internal/soi"
	"soifft/internal/trace"
	"soifft/internal/window"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("soifft: ")
	n := flag.Int("n", 3584, "transform length")
	ranks := flag.Int("ranks", 4, "number of in-process MPI ranks")
	segments := flag.Int("segments", 8, "total SOI segments (multiple of ranks)")
	b := flag.Int("b", 72, "convolution width B")
	muStr := flag.String("mu", "8/7", "oversampling factor nmu/dmu")
	baseline := flag.Bool("baseline", false, "also run the distributed Cooley-Tukey baseline")
	seed := flag.Int64("seed", 42, "input seed")
	codecStr := flag.String("codec", "identity", "all-to-all payload codec: identity, deltaplane, quant")
	codecTol := flag.Float64("codec-tolerance", 0, "quant codec tolerance (0 = the plan's accuracy budget)")
	jsonOut := flag.Bool("json", false, "emit the run summary as JSON (for scripts/bench_codec.sh)")
	flag.Parse()

	var nmu, dmu int
	if _, err := fmt.Sscanf(strings.ReplaceAll(*muStr, " ", ""), "%d/%d", &nmu, &dmu); err != nil {
		log.Fatalf("cannot parse -mu %q: %v", *muStr, err)
	}
	p := window.Params{N: *n, Segments: *segments, NMu: nmu, DMu: dmu, B: *b}
	if err := p.Validate(); err != nil {
		log.Printf("%v", err)
		gran := *segments * *segments * dmu
		log.Fatalf("hint: N must be a positive multiple of Segments^2*DMu = %d", gran)
	}

	x := ref.RandomVector(*n, *seed)
	want := make([]complex128, *n)
	fft.MustPlan(*n).Forward(want, x)

	if !*jsonOut {
		fmt.Printf("SOI FFT: N=%d segments=%d ranks=%d mu=%d/%d B=%d (M=%d, M'=%d, ghost=%d)\n",
			*n, *segments, *ranks, nmu, dmu, *b, p.M(), p.MPrime(), p.GhostElems())
	}

	got := make([]complex128, *n)
	bd := trace.NewBreakdown()
	localN := *n / *ranks
	start := time.Now()
	var mu sync.Mutex
	err := mpi.Run(*ranks, func(c mpi.Comm) error {
		d, err := dist.NewSOI(c, p, soi.DefaultOptions())
		if err != nil {
			return err
		}
		if err := d.SetCodec(*codecStr, *codecTol); err != nil {
			return err
		}
		rbd := trace.NewBreakdown()
		d.Breakdown = rbd
		r := c.Rank()
		if err := d.Forward(got[r*localN:(r+1)*localN], x[r*localN:(r+1)*localN]); err != nil {
			return err
		}
		mu.Lock()
		bd.Merge(rbd)
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	errL2 := cvec.RelErrL2(got, want)
	// HPCC-style round-trip residual: forward SOI + exact inverse.
	rt := make([]complex128, *n)
	fft.MustPlan(*n).Inverse(rt, got)
	residual := ref.GFFTResidual(x, rt)
	aliasBound := window.MustAliasBound(p)
	if *jsonOut {
		phases := make(map[string]float64)
		for _, ph := range bd.Phases() {
			phases[ph] = bd.Get(ph).Seconds()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{
			"n": *n, "ranks": *ranks, "segments": *segments,
			"mu": *muStr, "b": *b,
			"codec": *codecStr, "codec_tolerance": *codecTol,
			"wall_s":          elapsed.Seconds(),
			"rel_err_l2":      errL2,
			"estimated_error": aliasBound,
			"gfft_residual":   residual,
			"phase_seconds":   phases,
			"verify_ok":       errL2 <= 1e-6,
		}); err != nil {
			log.Fatal(err)
		}
		if errL2 > 1e-6 {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("  wall time      : %v\n", elapsed)
	fmt.Printf("  rank phase sum : %v\n", bd)
	fmt.Printf("  relative error : %.3e vs serial FFT\n", errL2)
	fmt.Printf("  G-FFT residual : %.3e (||x-x'||_inf / (eps*log2 N); exact FFTs score <16,\n"+
		"                   SOI is bounded by its designed alias error %.2e instead)\n",
		residual, aliasBound)
	if errL2 > 1e-6 {
		fmt.Println("  VERIFY: FAIL")
		os.Exit(1)
	}
	fmt.Println("  VERIFY: ok")

	if *baseline {
		if (*n)%(*ranks**ranks) != 0 {
			log.Fatalf("baseline needs ranks^2 | N")
		}
		ct := make([]complex128, *n)
		start = time.Now()
		err := mpi.Run(*ranks, func(c mpi.Comm) error {
			d, err := dist.NewCT(c, *n, 0)
			if err != nil {
				return err
			}
			r := c.Rank()
			return d.Forward(ct[r*localN:(r+1)*localN], x[r*localN:(r+1)*localN])
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Cooley-Tukey baseline (3 all-to-alls): %v, rel err %.3e\n",
			time.Since(start), cvec.RelErrL2(ct, want))
	}
}
