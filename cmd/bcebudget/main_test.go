package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"soifft/internal/gcbudget"
)

// TestGateAgainstTree runs the real gate end to end: the checked-in budget
// must pass, and a budget with one hot function's entry removed — exactly
// what the tree looks like when a fresh bounds check appears in an
// unbudgeted function — must fail with exit code 1. This is the test that
// proves scripts/check.sh fails on an unbudgeted bounds check.
func TestGateAgainstTree(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go build over the hot packages; skipped with -short")
	}
	var discard strings.Builder
	if code := run(nil, &discard, &discard); code != 0 {
		t.Fatalf("gate against checked-in budget: exit %d, output:\n%s", code, discard.String())
	}

	root, err := gcbudget.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	budget, err := gcbudget.ReadBudget(filepath.Join(root, "bce_budget.json"))
	if err != nil {
		t.Fatal(err)
	}
	removed := false
	for pkg, byFn := range budget {
		for fn := range byFn {
			delete(budget[pkg], fn)
			removed = true
			break
		}
		if removed {
			break
		}
	}
	if !removed {
		t.Fatal("checked-in budget is empty; the gate would be vacuous")
	}
	data, err := json.MarshalIndent(budget, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	tampered := filepath.Join(t.TempDir(), "budget.json")
	if err := os.WriteFile(tampered, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if code := run([]string{"-budget", tampered}, &out, &out); code != 1 {
		t.Fatalf("gate against tampered budget: exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no budget entry") {
		t.Errorf("tampered-budget failure should name the unbudgeted function; got:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "bounds check(s)") {
		t.Errorf("failure should name the budgeted quantity; got:\n%s", out.String())
	}
}

// TestWidenedCoverage pins the audited package set: the serving layer's
// per-frame path (wire codec loops, scheduler batch assembly) is budgeted
// alongside the compute kernels, and so are the client library and the
// soifftd daemon — both ends of the wire.
func TestWidenedCoverage(t *testing.T) {
	want := []string{"fft", "conv", "cvec", "window", "serve", "wire", "codec", "client", "soifftd"}
	if len(hotPackages) != len(want) {
		t.Fatalf("hotPackages = %v, want %d entries", hotPackages, len(want))
	}
	for i, suffix := range want {
		if !strings.HasSuffix(hotPackages[i], suffix) {
			t.Errorf("hotPackages[%d] = %q, want suffix %q", i, hotPackages[i], suffix)
		}
	}
}

// TestHoistedKernelsStayHoisted pins the BCE wins of the reslice hoists:
// the hot pointwise kernels must keep their accumulation loops free of
// per-iteration checks. Their budget entries are the one-time preamble
// slice checks only — if a per-element check reappears, the count rises
// above these ceilings and this test (and the gate) fails.
func TestHoistedKernelsStayHoisted(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go build over the hot packages; skipped with -short")
	}
	root, err := gcbudget.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	checks, err := gcbudget.Collect(root, bceFlag, []string{"./internal/cvec"}, isBoundsCheck)
	if err != nil {
		t.Fatal(err)
	}
	counts := gcbudget.CountByFunc(root, checks)
	ceilings := map[string]int{
		"PointwiseMul":     2, // the two reslice preamble checks
		"PointwiseMulConj": 2,
		"AXPY":             1,
	}
	for fn, max := range ceilings {
		if got := counts["soifft/internal/cvec"][fn]; got > max {
			t.Errorf("cvec.%s has %d surviving bounds checks, want <= %d (per-iteration check crept back into the loop?)", fn, got, max)
		}
	}
}
