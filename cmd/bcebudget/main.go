// Command bcebudget pins the compiler's bounds-check-elimination verdict on
// the hot kernel packages. It runs `go build` with
// -gcflags='-d=ssa/check_bce/debug=1', which prints one "Found IsInBounds" /
// "Found IsSliceInBounds" line per bounds check the SSA backend could NOT
// eliminate, attributes each surviving check to its enclosing function, and
// diffs the counts against the checked-in bce_budget.json. Any check in
// excess of a function's budget — in particular any check in a function
// with no budget entry — fails the gate with exit code 1.
//
// Bounds checks are cheap individually but not free in the paper's
// bandwidth-bound inner loops: a check per element is a compare-and-branch
// on the critical path of kernels that are otherwise pure streaming
// arithmetic, and it blocks vectorization-friendly code shapes. The shape
// contracts (//soilint:shape) prove slice relations statically for the
// reviewer; this gate tracks how much of that proof the compiler also
// discovers, and stops hot loops from silently regressing to per-iteration
// checking when someone reorders an index expression. The budget records
// the residual checks that are deliberate (one-time reslice preambles,
// strided gathers the compiler cannot prove) so that only NEW checks fail.
//
// Usage:
//
//	bcebudget [-budget bce_budget.json] [-update] [-v] [packages...]
//
// With no packages, the six hot packages are audited. -update
// rewrites the budget file to match the current tree (use after deliberate
// changes, reviewing the diff). Exit codes: 0 within budget, 1 over budget,
// 2 usage or toolchain failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"soifft/internal/gcbudget"
)

// hotPackages are the audited kernels: the four packages whose inner loops
// execute per element per transform, plus the serving layer's per-frame
// path — the wire codec's encode/decode loops and the scheduler's batch
// assembly also run per element per request. The pipeline drivers
// (internal/soi, internal/dist) are covered by escapebudget but not here:
// their per-call slicing is O(segments), not O(N), so bounds checks there
// are noise.
var hotPackages = []string{
	"./internal/fft",
	"./internal/conv",
	"./internal/cvec",
	"./internal/window",
	"./internal/serve",
	"./internal/wire",
	"./internal/codec",
	"./client",
	"./cmd/soifftd",
}

// bceFlag is the SSA debug flag that reports every surviving bounds check.
const bceFlag = "-d=ssa/check_bce/debug=1"

// isBoundsCheck keeps the check_bce report lines.
func isBoundsCheck(msg string) bool {
	return strings.Contains(msg, "Found IsInBounds") || strings.Contains(msg, "Found IsSliceInBounds")
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bcebudget", flag.ContinueOnError)
	fs.SetOutput(stderr)
	budgetPath := fs.String("budget", "bce_budget.json", "budget file, relative to the module root")
	update := fs.Bool("update", false, "rewrite the budget file to match the current tree")
	verbose := fs.Bool("v", false, "list every surviving bounds check")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: bcebudget [flags] [packages...]\n\n")
		fmt.Fprintf(stderr, "Audits surviving bounds checks in the hot kernel packages against %s.\n", *budgetPath)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	pkgs := fs.Args()
	if len(pkgs) == 0 {
		pkgs = hotPackages
	}

	root, err := gcbudget.ModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "bcebudget: %v\n", err)
		return 2
	}

	checks, err := gcbudget.Collect(root, bceFlag, pkgs, isBoundsCheck)
	if err != nil {
		fmt.Fprintf(stderr, "bcebudget: %v\n", err)
		return 2
	}
	counts := gcbudget.CountByFunc(root, checks)

	if *verbose {
		for _, c := range checks {
			fmt.Fprintf(stdout, "%s: %s:%d:%d: %s\n", c.Pkg, c.File, c.Line, c.Col, c.Msg)
		}
	}

	path := *budgetPath
	if !filepath.IsAbs(path) {
		path = filepath.Join(root, path)
	}
	if *update {
		if err := gcbudget.WriteBudget(path, counts); err != nil {
			fmt.Fprintf(stderr, "bcebudget: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "bcebudget: wrote %s (%d packages)\n", *budgetPath, len(counts))
		return 0
	}

	budget, err := gcbudget.ReadBudget(path)
	if err != nil {
		fmt.Fprintf(stderr, "bcebudget: %v (run with -update to create it)\n", err)
		return 2
	}
	problems, notes := gcbudget.DiffBudget(counts, budget, "bounds check(s)")
	for _, n := range notes {
		fmt.Fprintf(stdout, "bcebudget: note: %s\n", n)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(stderr, "bcebudget: FAIL: %s\n", p)
		}
		fmt.Fprintf(stderr, "bcebudget: %d function(s) over budget; if the new checks are deliberate, re-run with -update and commit the diff\n", len(problems))
		return 1
	}
	fmt.Fprintf(stdout, "bcebudget: ok (%d surviving bounds checks within budget across %d packages)\n", len(checks), len(counts))
	return 0
}
