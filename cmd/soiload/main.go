// Command soiload is a closed-loop load generator for soifftd.
//
// It opens -c connections, runs -pipeline concurrent request loops on each
// (pipelining is what gives the server same-length requests to coalesce),
// and after a warmup reports client-side latency percentiles, throughput,
// and the server-side deltas that show whether batching engaged: mean
// executed batch width and the queue-wait/plan/execute/serialize phase
// split.
//
//	soiload -addr localhost:7311 -n 64 -c 8 -pipeline 4 -duration 10s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"soifft/client"
)

type result struct {
	N         int     `json:"n"`
	Count     int     `json:"count"`
	Alg       string  `json:"alg"`
	Codec     string  `json:"codec"`
	Signal    string  `json:"signal"`
	Conns     int     `json:"conns"`
	Pipeline  int     `json:"pipeline"`
	DurationS float64 `json:"duration_s"`
	Ops       int64   `json:"ops"`
	Errors    int64   `json:"errors"`
	OpsPerSec float64 `json:"ops_per_s"`
	P50Us     float64 `json:"p50_us"`
	P99Us     float64 `json:"p99_us"`
	MeanUs    float64 `json:"mean_us"`

	// Server-side deltas over the measurement window.
	ServerMeanBatch float64            `json:"server_mean_batch"`
	ServerMaxBatch  float64            `json:"server_max_batch"`
	ServerShed      float64            `json:"server_shed"`
	PhaseSeconds    map[string]float64 `json:"phase_seconds"`
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7311", "soifftd address")
		n        = flag.Int("n", 64, "transform length per request")
		count    = flag.Int("count", 1, "transforms per request frame (TBatch when > 1)")
		conns    = flag.Int("c", 8, "connections")
		pipeline = flag.Int("pipeline", 4, "concurrent request loops per connection")
		duration = flag.Duration("duration", 10*time.Second, "measurement window")
		warmup   = flag.Duration("warmup", 2*time.Second, "warmup before measuring")
		inverse  = flag.Bool("inverse", false, "issue inverse transforms")
		algName  = flag.String("alg", "auto", "algorithm: auto, exact, soi")
		codecStr = flag.String("codec", "identity", "payload codec: identity, deltaplane, quant")
		codecTol = flag.Float64("codec-tolerance", 0, "per-element tolerance for the quant codec")
		signal   = flag.String("signal", "noise", "request payload: noise (incompressible) or smooth (bandlimited, the codecs' target regime)")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON")
	)
	flag.Parse()

	var alg client.Alg
	switch *algName {
	case "auto":
		alg = client.Auto
	case "exact":
		alg = client.Exact
	case "soi":
		alg = client.SOI
	default:
		log.Fatalf("soiload: unknown -alg %q", *algName)
	}

	if err := client.WaitReady(*addr, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	statsCl, err := client.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer statsCl.Close()

	src := make([]complex128, *n**count)
	rng := rand.New(rand.NewSource(1))
	switch *signal {
	case "noise":
		for i := range src {
			src[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	case "smooth":
		// A handful of low-frequency modes per transform: payloads whose
		// neighboring samples are close, the regime the delta codecs target.
		const modes = 8
		amp := make([]float64, modes)
		ph := make([]float64, modes)
		for m := range amp {
			amp[m] = 0.5 + rng.Float64()
			ph[m] = 2 * math.Pi * rng.Float64()
		}
		for i := range src {
			t := i % *n
			var re, im float64
			for m := 0; m < modes; m++ {
				a := 2*math.Pi*float64(m+1)*float64(t)/float64(*n) + ph[m]
				re += amp[m] * math.Cos(a)
				im += amp[m] * math.Sin(a)
			}
			src[i] = complex(re, im)
		}
	default:
		log.Fatalf("soiload: unknown -signal %q (want noise or smooth)", *signal)
	}

	var (
		recording atomic.Bool
		stop      atomic.Bool
		ops       atomic.Int64
		errs      atomic.Int64
		latMu     sync.Mutex
		lats      []time.Duration
	)
	worker := func(cl *client.Client) {
		dst := make([]complex128, len(src))
		local := make([]time.Duration, 0, 4096)
		ctx := context.Background()
		for !stop.Load() {
			t0 := time.Now()
			err := cl.Batch(ctx, dst, src, *count, *inverse)
			lat := time.Since(t0)
			if !recording.Load() {
				continue
			}
			if err != nil {
				errs.Add(1)
				continue
			}
			ops.Add(int64(*count))
			local = append(local, lat)
		}
		latMu.Lock()
		lats = append(lats, local...)
		latMu.Unlock()
	}

	var wg sync.WaitGroup
	clients := make([]*client.Client, *conns)
	for i := range clients {
		cl, err := client.Dial(*addr)
		if err != nil {
			log.Fatalf("soiload: connection %d: %v", i, err)
		}
		cl.SetAlg(alg)
		if err := cl.SetCodec(*codecStr, *codecTol); err != nil {
			log.Fatalf("soiload: -codec: %v", err)
		}
		clients[i] = cl
		for p := 0; p < *pipeline; p++ {
			wg.Add(1)
			go func() { defer wg.Done(); worker(cl) }()
		}
	}

	time.Sleep(*warmup)
	before, err := statsCl.Stats(context.Background())
	if err != nil {
		log.Fatalf("soiload: stats: %v", err)
	}
	start := time.Now()
	recording.Store(true)
	time.Sleep(*duration)
	recording.Store(false)
	elapsed := time.Since(start)
	after, err := statsCl.Stats(context.Background())
	if err != nil {
		log.Fatalf("soiload: stats: %v", err)
	}
	stop.Store(true)
	wg.Wait()
	for _, cl := range clients {
		cl.Close()
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return float64(lats[i]) / float64(time.Microsecond)
	}
	var mean float64
	for _, l := range lats {
		mean += float64(l)
	}
	if len(lats) > 0 {
		mean /= float64(len(lats)) * float64(time.Microsecond)
	}

	dBatches := after["soifftd_batches_total"] - before["soifftd_batches_total"]
	dTransforms := after["soifftd_batched_transforms_total"] - before["soifftd_batched_transforms_total"]
	meanBatch := 0.0
	if dBatches > 0 {
		meanBatch = dTransforms / dBatches
	}
	phases := make(map[string]float64)
	for _, k := range client.StatsNames(after) {
		const pre = "soifftd_phase_"
		if len(k) > len(pre) && k[:len(pre)] == pre {
			phases[k[len(pre):]] = after[k] - before[k]
		}
	}

	res := result{
		N: *n, Count: *count, Alg: *algName, Codec: *codecStr, Signal: *signal, Conns: *conns, Pipeline: *pipeline,
		DurationS:       elapsed.Seconds(),
		Ops:             ops.Load(),
		Errors:          errs.Load(),
		OpsPerSec:       float64(ops.Load()) / elapsed.Seconds(),
		P50Us:           pct(0.50),
		P99Us:           pct(0.99),
		MeanUs:          mean,
		ServerMeanBatch: meanBatch,
		ServerMaxBatch:  after["soifftd_max_batch_size"],
		ServerShed:      after["soifftd_shed_overload_total"] - before["soifftd_shed_overload_total"],
		PhaseSeconds:    phases,
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("soiload: n=%d count=%d alg=%s codec=%s conns=%d pipeline=%d window=%.2fs\n",
		res.N, res.Count, res.Alg, res.Codec, res.Conns, res.Pipeline, res.DurationS)
	fmt.Printf("  throughput  %.0f transforms/s  (%d ops, %d errors)\n", res.OpsPerSec, res.Ops, res.Errors)
	fmt.Printf("  latency     p50 %.1fµs  p99 %.1fµs  mean %.1fµs\n", res.P50Us, res.P99Us, res.MeanUs)
	fmt.Printf("  server      mean batch %.2f  max batch %.0f  shed %.0f\n",
		res.ServerMeanBatch, res.ServerMaxBatch, res.ServerShed)
	for _, name := range []string{"queue_wait_seconds", "plan_seconds", "execute_seconds", "serialize_seconds"} {
		fmt.Printf("  phase       %-18s %.3fs\n", name, res.PhaseSeconds[name])
	}
}
