package soifft

import (
	"fmt"
	"sync"

	"soifft/internal/dist"
	"soifft/internal/mpi"
	"soifft/internal/soi"
	"soifft/internal/trace"
)

// Cluster executes the distributed SOI FFT across an in-process group of
// ranks — the paper's symmetric-mode MPI program with goroutines standing
// in for MPI processes. It exists both as a parallel execution engine and
// as a faithful, runnable rendition of the distributed algorithm: the same
// code path (ghost exchange, one pipelined all-to-all per segment group,
// local M'-point FFTs with fused demodulation) that a multi-machine
// deployment over the TCP transport uses.
type Cluster struct {
	ranks int
	cfg   Config

	// WrapComm, when non-nil, wraps each rank's communicator before the
	// distributed program runs — the seam for fault injection and transport
	// instrumentation. Wrapped comms exposing Flush (pending delayed
	// deliveries) are flushed after each rank finishes cleanly, so the
	// no-hang contract extends through the public Forward/Inverse API.
	WrapComm func(mpi.Comm) mpi.Comm

	mu    sync.Mutex
	plans map[int]*soi.Plan // cached single-address-space plans by length
}

// NewCluster creates an in-process cluster with the given rank count.
// Config.Segments must be a multiple of ranks (each rank owns
// Segments/ranks segments, the paper's "segments per MPI process").
func NewCluster(ranks int, cfg Config) (*Cluster, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("soifft: invalid rank count %d", ranks)
	}
	if cfg.Segments == 0 {
		cfg.Segments = 8
	}
	if cfg.Segments%ranks != 0 {
		return nil, fmt.Errorf("soifft: segments %d not a multiple of ranks %d", cfg.Segments, ranks)
	}
	return &Cluster{ranks: ranks, cfg: cfg, plans: map[int]*soi.Plan{}}, nil
}

// planFor returns (building and caching on first use) the shared plan for
// length n. The window design dominates planning cost, so repeated
// transforms of one length reuse it across all ranks and calls.
func (c *Cluster) planFor(n int) (*soi.Plan, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.plans[n]; ok {
		return p, nil
	}
	params, opts, err := c.cfg.params(n)
	if err != nil {
		return nil, err
	}
	p, err := soi.NewPlan(params, c.adjustWorkers(opts))
	if err != nil {
		return nil, err
	}
	c.plans[n] = p
	return p, nil
}

// Ranks returns the number of ranks.
func (c *Cluster) Ranks() int { return c.ranks }

// RunStats reports what one distributed transform did.
type RunStats struct {
	// PhaseSeconds sums wall-clock seconds per phase over all ranks
	// (Convolution, Local FFT, Exposed MPI, etc.).
	PhaseSeconds map[string]float64
}

// Forward computes the in-order forward DFT of src (length N) into dst by
// running the distributed SOI program across the cluster's ranks. The
// input is block-distributed internally: rank r processes
// src[r*N/ranks : (r+1)*N/ranks].
//
//soilint:shape len(dst) >= len(src)
func (c *Cluster) Forward(dst, src []complex128) (*RunStats, error) {
	n := len(src)
	if len(dst) < n {
		return nil, fmt.Errorf("soifft: dst shorter than src")
	}
	plan, err := c.planFor(n)
	if err != nil {
		return nil, err
	}
	localN := n / c.ranks
	agg := trace.NewBreakdown()
	var mu sync.Mutex
	err = mpi.Run(c.ranks, func(comm mpi.Comm) error {
		if c.WrapComm != nil {
			comm = c.WrapComm(comm)
		}
		d, err := dist.NewSOIFromPlan(comm, plan)
		if err != nil {
			return err
		}
		bd := trace.NewBreakdown()
		d.Breakdown = bd
		r := comm.Rank()
		if err := d.Forward(dst[r*localN:(r+1)*localN], src[r*localN:(r+1)*localN]); err != nil {
			return err
		}
		mu.Lock()
		agg.Merge(bd)
		mu.Unlock()
		if f, ok := comm.(interface{ Flush() error }); ok {
			return f.Flush()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	stats := &RunStats{PhaseSeconds: map[string]float64{}}
	for _, ph := range agg.Phases() {
		stats.PhaseSeconds[ph] = agg.Get(ph).Seconds()
	}
	return stats, nil
}

// Inverse computes the normalized inverse DFT of src into dst across the
// cluster (the conjugation identity around Forward; the conjugations are
// rank-local).
//
//soilint:shape len(dst) >= len(src)
func (c *Cluster) Inverse(dst, src []complex128) (*RunStats, error) {
	n := len(src)
	cc := make([]complex128, n)
	for i, v := range src {
		cc[i] = complex(real(v), -imag(v))
	}
	stats, err := c.Forward(dst, cc)
	if err != nil {
		return nil, err
	}
	inv := 1 / float64(n)
	for i, v := range dst[:n] {
		dst[i] = complex(real(v)*inv, -imag(v)*inv)
	}
	return stats, nil
}

// adjustWorkers divides the intra-node worker budget across ranks so an
// in-process cluster does not oversubscribe the machine.
func (c *Cluster) adjustWorkers(opts soi.Options) soi.Options {
	if opts.Workers == 0 && c.ranks > 1 {
		opts.Workers = 1
	}
	return opts
}
