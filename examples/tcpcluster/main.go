// Tcpcluster: a real multi-process deployment of the distributed SOI FFT.
//
// The parent process spawns one child OS process per rank (re-executing
// itself); each child opens a TCP listener, the parent relays the address
// list, and the ranks form a full mesh — the same topology an MPI job on a
// real cluster would use, except the "interconnect" is loopback TCP. Each
// rank transforms its block and returns it to the parent over stdout; the
// parent verifies the assembled spectrum against the exact FFT.
//
// This is the deployment mode the TCP transport exists for: nothing in the
// algorithm layer knows whether its Comm is goroutines, TCP loopback, or a
// datacenter.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"os"
	"os/exec"
	"strconv"

	"soifft/internal/dist"
	"soifft/internal/fft"
	"soifft/internal/mpi"
	"soifft/internal/ref"
	"soifft/internal/soi"
	"soifft/internal/window"
)

const (
	world    = 4
	segments = 4
	n        = 7 * segments * 8 * segments // 896
)

func params() window.Params {
	return window.Params{N: n, Segments: segments, NMu: 8, DMu: 7, B: 72}
}

func main() {
	log.SetFlags(0)
	if r := os.Getenv("SOIFFT_RANK"); r != "" {
		rank, err := strconv.Atoi(r)
		if err != nil {
			log.Fatal(err)
		}
		child(rank)
		return
	}
	parent()
}

// childMsg is the line protocol between ranks and the parent.
type childMsg struct {
	Rank int          `json:"rank"`
	Addr string       `json:"addr,omitempty"`
	Out  []complex128 `json:"-"`
	OutR []float64    `json:"out_re,omitempty"`
	OutI []float64    `json:"out_im,omitempty"`
}

func child(rank int) {
	ln, err := mpi.ListenTCP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// Announce our address, then wait for the full address list on stdin.
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(childMsg{Rank: rank, Addr: ln.Addr().String()}); err != nil {
		log.Fatal(err)
	}
	var addrs []string
	if err := json.NewDecoder(bufio.NewReader(os.Stdin)).Decode(&addrs); err != nil {
		log.Fatal(err)
	}
	node, err := mpi.ConnectTCP(rank, world, ln, addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	// Every rank generates the same deterministic input and takes its block.
	x := ref.RandomVector(n, 7)
	localN := n / world
	d, err := dist.NewSOI(node, params(), soi.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	dst := make([]complex128, localN)
	if err := d.Forward(dst, x[rank*localN:(rank+1)*localN]); err != nil {
		log.Fatal(err)
	}
	msg := childMsg{Rank: rank, OutR: make([]float64, localN), OutI: make([]float64, localN)}
	for i, v := range dst {
		msg.OutR[i], msg.OutI[i] = real(v), imag(v)
	}
	if err := enc.Encode(msg); err != nil {
		log.Fatal(err)
	}
}

func parent() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	type childProc struct {
		cmd *exec.Cmd
		in  *json.Encoder
		out *json.Decoder
	}
	procs := make([]childProc, world)
	addrs := make([]string, world)
	for r := 0; r < world; r++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), fmt.Sprintf("SOIFFT_RANK=%d", r))
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			log.Fatal(err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			log.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		procs[r] = childProc{cmd: cmd, in: json.NewEncoder(stdin), out: json.NewDecoder(bufio.NewReader(stdout))}
	}
	fmt.Printf("spawned %d rank processes (pids:", world)
	for _, p := range procs {
		fmt.Printf(" %d", p.cmd.Process.Pid)
	}
	fmt.Println(")")

	// Collect listener addresses, then broadcast the list.
	for r := 0; r < world; r++ {
		var msg childMsg
		if err := procs[r].out.Decode(&msg); err != nil {
			log.Fatalf("rank %d hello: %v", r, err)
		}
		addrs[msg.Rank] = msg.Addr
	}
	for r := 0; r < world; r++ {
		if err := procs[r].in.Encode(addrs); err != nil {
			log.Fatal(err)
		}
	}

	// Collect each rank's output block.
	out := make([]complex128, n)
	localN := n / world
	for r := 0; r < world; r++ {
		var msg childMsg
		if err := procs[r].out.Decode(&msg); err != nil {
			log.Fatalf("rank %d result: %v", r, err)
		}
		for i := range msg.OutR {
			out[msg.Rank*localN+i] = complex(msg.OutR[i], msg.OutI[i])
		}
	}
	for _, p := range procs {
		if err := p.cmd.Wait(); err != nil {
			log.Fatal(err)
		}
	}

	// Verify against the exact FFT.
	x := ref.RandomVector(n, 7)
	want := make([]complex128, n)
	fft.MustPlan(n).Forward(want, x)
	var num, den float64
	for i := range out {
		d := out[i] - want[i]
		num += real(d)*real(d) + imag(d)*imag(d)
		den += real(want[i])*real(want[i]) + imag(want[i])*imag(want[i])
	}
	relErr := math.Sqrt(num / den)
	fmt.Printf("distributed SOI across %d OS processes over TCP: N=%d, rel err %.2e\n", world, n, relErr)
	if relErr > 1e-6 {
		log.Fatal("VERIFY FAILED")
	}
	fmt.Println("VERIFY ok")
}
