// Quickstart: plan an SOI FFT, transform a vector, check it against the
// exact FFT, and round-trip through the inverse.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"soifft"
)

func main() {
	// Pick a valid SOI length near 10k for the default configuration
	// (segments=8, mu=8/7: lengths must be multiples of 8*8*7 = 448).
	_, n := soifft.ValidLength(10000, soifft.DefaultConfig())
	fmt.Printf("transform length n = %d\n", n)

	plan, err := soifft.NewPlan(n, soifft.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("designed accuracy bound: %.2e\n", plan.EstimatedError())

	// A noisy two-tone signal.
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, n)
	for j := range x {
		a1 := 2 * math.Pi * 440 * float64(j) / float64(n)
		a2 := 2 * math.Pi * 1234 * float64(j) / float64(n)
		x[j] = complex(3*math.Cos(a1)+math.Cos(a2)+0.1*rng.NormFloat64(), 0)
	}

	// Forward SOI transform (in-order, unnormalized).
	y := make([]complex128, n)
	if err := plan.Forward(y, x); err != nil {
		log.Fatal(err)
	}

	// Compare against the library's exact mixed-radix FFT.
	exact, err := soifft.FFT(x)
	if err != nil {
		log.Fatal(err)
	}
	var num, den float64
	for i := range y {
		d := y[i] - exact[i]
		num += real(d)*real(d) + imag(d)*imag(d)
		den += real(exact[i])*real(exact[i]) + imag(exact[i])*imag(exact[i])
	}
	fmt.Printf("relative error vs exact FFT: %.2e\n", math.Sqrt(num/den))

	// The two tones dominate the spectrum.
	fmt.Printf("|Y[440]| = %.0f, |Y[1234]| = %.0f (n/2 scale: %d)\n",
		cabs(y[440]), cabs(y[1234]), n/2)

	// Inverse round trip.
	z := make([]complex128, n)
	if err := plan.Inverse(z, y); err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for i := range z {
		if d := cabs(z[i] - x[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("inverse round-trip max error: %.2e\n", worst)
}

func cabs(z complex128) float64 { return math.Hypot(real(z), imag(z)) }
