// Offload: the Section 7 design-space exploration. The paper's model says
// that in offload mode the two PCIe crossings dominate the node-local work,
// making offload ~25% slower than symmetric mode at 6 GB/s PCIe — and that
// the model "can guide to select the right coprocessor usage mode" when an
// application is being designed. This example asks the model: at what PCIe
// bandwidth does offload stop mattering, and how does the verdict change
// with cluster size?
package main

import (
	"fmt"

	"soifft/internal/cluster"
	"soifft/internal/machine"
	"soifft/internal/perfmodel"
)

func main() {
	fmt.Println("== symmetric vs offload mode (Section 7 / Fig 12) ==")
	fmt.Printf("  %-6s %-14s %-14s %s\n", "nodes", "symmetric (s)", "offload (s)", "offload penalty")
	for _, nodes := range []int{8, 32, 128, 512} {
		sym := cluster.Simulate(cluster.Config{
			Nodes: nodes, Node: machine.XeonPhi(),
			Algorithm: perfmodel.SOI, Overlap: true, FuseDemod: true,
		})
		off := cluster.Simulate(cluster.Config{
			Nodes: nodes, Node: machine.XeonPhi(),
			Algorithm: perfmodel.SOI, Overlap: true, FuseDemod: true, Offload: true,
		})
		fmt.Printf("  %-6d %-14.3f %-14.3f %+.0f%%\n",
			nodes, sym.VirtualTime, off.VirtualTime,
			100*(off.VirtualTime/sym.VirtualTime-1))
	}

	fmt.Println()
	fmt.Println("== PCIe bandwidth sweep at 32 nodes: when does offload stop hurting? ==")
	fmt.Printf("  %-12s %-14s %s\n", "PCIe GB/s", "offload (s)", "penalty vs symmetric")
	sym := cluster.Simulate(cluster.Config{
		Nodes: 32, Node: machine.XeonPhi(),
		Algorithm: perfmodel.SOI, Overlap: true, FuseDemod: true,
	})
	crossover := -1.0
	for _, gbps := range []float64{4, 6, 8, 12, 16, 24, 32} {
		off := cluster.Simulate(cluster.Config{
			Nodes: 32, Node: machine.XeonPhi(),
			Algorithm: perfmodel.SOI, Overlap: true, FuseDemod: true, Offload: true,
			PCIe: machine.PCIe{BytesPerSec: gbps * 1e9},
		})
		pen := off.VirtualTime/sym.VirtualTime - 1
		fmt.Printf("  %-12.0f %-14.3f %+.1f%%\n", gbps, off.VirtualTime, 100*pen)
		if crossover < 0 && pen < 0.02 {
			crossover = gbps
		}
	}
	if crossover > 0 {
		fmt.Printf("\noffload becomes free at roughly %.0f GB/s PCIe — far beyond the paper-era 6 GB/s,\n", crossover)
		fmt.Println("which is why the paper runs in symmetric mode.")
	} else {
		fmt.Println("\noffload never reaches parity in the swept range.")
	}
}
