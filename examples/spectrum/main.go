// Spectrum: the workload class the paper's introduction motivates — an
// in-order 1D spectral analysis of a long signal, distributed across ranks.
//
// A long record hides a handful of weak tones in noise. The distributed
// SOI FFT computes the in-order spectrum with each rank owning a contiguous
// segment — which is exactly what makes detection embarrassingly local
// afterwards: every rank scans only its own block for peaks. A conventional
// distributed FFT would either leave the spectrum bit-reversed/strided
// across ranks or pay three all-to-alls to reorder it; SOI pays one.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"soifft"
)

const (
	ranks    = 8
	perRank  = 7 * 64 * 64 // per-rank elements; N = 8x this = 229376
	toneSNR  = 0.05        // tone amplitude relative to noise
	numTones = 5
)

func main() {
	n := ranks * perRank
	cfg := soifft.DefaultConfig()
	cfg.Segments = ranks

	// Hide a few weak tones at "unknown" bins in heavy noise.
	rng := rand.New(rand.NewSource(7))
	truth := make([]int, numTones)
	for i := range truth {
		truth[i] = rng.Intn(n)
	}
	sort.Ints(truth)
	x := make([]complex128, n)
	for j := range x {
		x[j] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	for _, f := range truth {
		for j := range x {
			a := 2 * math.Pi * float64((j*f)%n) / float64(n)
			s, c := math.Sincos(a)
			x[j] += complex(toneSNR*c, toneSNR*s)
		}
	}

	cl, err := soifft.NewCluster(ranks, cfg)
	if err != nil {
		log.Fatal(err)
	}
	y := make([]complex128, n)
	stats, err := cl.Forward(y, x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed SOI across %d ranks (N = %d)\n", ranks, n)
	for ph, s := range stats.PhaseSeconds {
		fmt.Printf("  %-12s %8.1f ms (summed over ranks)\n", ph, 1000*s)
	}

	// Per-rank local peak scan: each rank examines only its own in-order
	// block of the spectrum.
	type peak struct {
		bin int
		mag float64
	}
	var peaks []peak
	for r := 0; r < ranks; r++ {
		lo, hi := r*perRank, (r+1)*perRank
		// Noise floor estimate for this block.
		var sum float64
		for _, v := range y[lo:hi] {
			sum += math.Hypot(real(v), imag(v))
		}
		floor := sum / float64(perRank)
		for k := lo; k < hi; k++ {
			if m := math.Hypot(real(y[k]), imag(y[k])); m > 8*floor {
				peaks = append(peaks, peak{bin: k, mag: m})
			}
		}
	}
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].bin < peaks[j].bin })

	fmt.Printf("planted tones : %v\n", truth)
	found := make([]int, 0, len(peaks))
	for _, p := range peaks {
		found = append(found, p.bin)
	}
	fmt.Printf("detected peaks: %v\n", found)

	hits := 0
	for _, f := range truth {
		for _, p := range found {
			if p == f {
				hits++
				break
			}
		}
	}
	fmt.Printf("recovered %d/%d tones at SNR %.0f%%\n", hits, numTones, 100*toneSNR)
	if hits != numTones {
		log.Fatal("detection failed")
	}
}
