// Weakscaling: a miniature of the paper's Fig. 8/Fig. 9 experiment run for
// real on this machine (in-process ranks), next to the calibrated cluster
// simulation of the paper's Stampede platform at full scale.
//
// Each rank gets a fixed share of the problem; the rank count doubles from
// 1 to 8. The real runs report measured wall time and per-phase breakdowns
// (the shape of Fig. 9); the simulation reports the projected TFLOPS of the
// 4..512-node Xeon and Xeon Phi clusters (the shape of Fig. 8).
package main

import (
	"fmt"
	"log"
	"time"

	"soifft"
	"soifft/internal/cluster"
	"soifft/internal/machine"
	"soifft/internal/perfmodel"
	"soifft/internal/ref"
)

func main() {
	const perRank = 7 * 32 * 64 // elements per rank
	fmt.Println("== real weak scaling on this machine (in-process ranks) ==")
	fmt.Printf("  %-6s %-10s %-12s %s\n", "ranks", "N", "wall time", "phase sums")
	for _, ranks := range []int{1, 2, 4, 8} {
		n := perRank * ranks
		cfg := soifft.DefaultConfig()
		cfg.Segments = 8 // constant total segments => valid lengths at every rank count
		x := ref.RandomVector(n, int64(ranks))
		y := make([]complex128, n)
		cl, err := soifft.NewCluster(ranks, cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Warm up the plan caches, then time.
		if _, err := cl.Forward(y, x); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		stats, err := cl.Forward(y, x)
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)
		fmt.Printf("  %-6d %-10d %-12v", ranks, n, wall.Round(time.Millisecond))
		for _, ph := range []string{"Convolution", "Local FFT", "Exposed MPI"} {
			fmt.Printf(" %s=%.0fms", ph, 1000*stats.PhaseSeconds[ph])
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("== simulated weak scaling on the paper's platform (2^27 points/node) ==")
	fmt.Printf("  %-6s %-14s %-14s %s\n", "nodes", "SOI Xeon (TF)", "SOI Phi (TF)", "speedup")
	for _, nodes := range perfmodel.Fig8Nodes {
		xeon := cluster.Simulate(cluster.Config{
			Nodes: nodes, Node: machine.XeonE5(),
			Algorithm: perfmodel.SOI, Overlap: true,
		})
		phi := cluster.Simulate(cluster.Config{
			Nodes: nodes, Node: machine.XeonPhi(),
			Algorithm: perfmodel.SOI, Overlap: true, FuseDemod: true,
		})
		fmt.Printf("  %-6d %-14.2f %-14.2f %.2fx\n",
			nodes, xeon.TFLOPS, phi.TFLOPS, phi.TFLOPS/xeon.TFLOPS)
	}
}
