package soifft_test

import (
	"fmt"
	"math"

	"soifft"
)

// ExampleNewPlan transforms a pure tone and reads its spectral line.
func ExampleNewPlan() {
	// Valid lengths are multiples of Segments^2 * OversampleDen (448 for
	// the default configuration).
	_, n := soifft.ValidLength(2000, soifft.DefaultConfig())

	plan, err := soifft.NewPlan(n, soifft.DefaultConfig())
	if err != nil {
		panic(err)
	}
	// A unit tone at bin 100: its DFT is a single line of height n.
	x := make([]complex128, n)
	for j := range x {
		s, c := math.Sincos(2 * math.Pi * 100 * float64(j) / float64(n))
		x[j] = complex(c, s)
	}
	y := make([]complex128, n)
	if err := plan.Forward(y, x); err != nil {
		panic(err)
	}
	fmt.Printf("n = %d\n", n)
	fmt.Printf("|Y[100]|/n = %.6f\n", math.Hypot(real(y[100]), imag(y[100]))/float64(n))
	// Output:
	// n = 2240
	// |Y[100]|/n = 1.000000
}

// ExampleNewCluster runs the distributed transform across in-process ranks.
func ExampleNewCluster() {
	_, n := soifft.ValidLength(3000, soifft.DefaultConfig())
	cl, err := soifft.NewCluster(4, soifft.DefaultConfig())
	if err != nil {
		panic(err)
	}
	x := make([]complex128, n)
	x[1] = 1 // impulse at position 1: flat unit-magnitude spectrum
	y := make([]complex128, n)
	if _, err := cl.Forward(y, x); err != nil {
		panic(err)
	}
	fmt.Printf("|Y[0]| = %.4f, |Y[%d]| = %.4f\n",
		math.Hypot(real(y[0]), imag(y[0])), n/2, math.Hypot(real(y[n/2]), imag(y[n/2])))
	// Output:
	// |Y[0]| = 1.0000, |Y[1568]| = 1.0000
}

// ExampleFFT uses the exact mixed-radix kernel directly.
func ExampleFFT() {
	y, err := soifft.FFT([]complex128{1, 1, 1, 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(real(y[0]), real(y[1]))
	// Output:
	// 4 0
}
