package soifft

import (
	"math"
	"math/cmplx"
	"testing"

	"soifft/internal/cvec"
	"soifft/internal/ref"
)

// validN returns a valid SOI length near the requested magnitude for the
// default config (segments=8, dmu=7): multiples of 8*8*7 = 448.
func validN(k int) int { return 448 * k }

func TestPlanForwardMatchesFFT(t *testing.T) {
	n := validN(8) // 3584
	plan, err := NewPlan(n, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := ref.RandomVector(n, 1)
	got := make([]complex128, n)
	if err := plan.Forward(got, x); err != nil {
		t.Fatal(err)
	}
	want, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	e := cvec.RelErrL2(got, want)
	if e > 1e-7 {
		t.Errorf("SOI error %g (designed bound %g)", e, plan.EstimatedError())
	}
	if plan.N() != n || plan.Segments() != 8 {
		t.Errorf("metadata: N=%d Segments=%d", plan.N(), plan.Segments())
	}
}

func TestPlanInverseRoundTrip(t *testing.T) {
	n := validN(4)
	plan, err := NewPlan(n, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := ref.RandomVector(n, 2)
	y := make([]complex128, n)
	z := make([]complex128, n)
	if err := plan.Forward(y, x); err != nil {
		t.Fatal(err)
	}
	if err := plan.Inverse(z, y); err != nil {
		t.Fatal(err)
	}
	if e := cvec.RelErrL2(z, x); e > 1e-6 {
		t.Errorf("round trip error %g", e)
	}
}

func TestConfigVariants(t *testing.T) {
	n := validN(4)
	x := ref.RandomVector(n, 3)
	want, _ := FFT(x)
	cfgs := []Config{
		DefaultConfig(),
		{Segments: 4, OversampleNum: 8, OversampleDen: 7, ConvWidth: 48},
		{Segments: 8, OversampleNum: 8, OversampleDen: 7, ConvWidth: 72,
			Optimizations: Optimizations{NaiveLocalFFT: true, NaiveConvolution: true, NoFuseDemod: true}},
		{Workers: 2}, // all defaults otherwise
	}
	for i, cfg := range cfgs {
		plan, err := NewPlan(n, cfg)
		if err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
		got := make([]complex128, n)
		if err := plan.Forward(got, x); err != nil {
			t.Fatal(err)
		}
		if e := cvec.RelErrL2(got, want); e > 1e-5 {
			t.Errorf("cfg %d: error %g", i, e)
		}
	}
}

func TestMu54MoreAccurateThan87(t *testing.T) {
	// mu = 5/4 must beat mu = 8/7 at the same B — the accuracy/flops
	// trade-off the paper describes.
	n := 4 * 4 * 4 * 80 // multiple of S^2*dmu for both 4/7 and 4/4 configs... use segments 4
	c87 := Config{Segments: 4, OversampleNum: 8, OversampleDen: 7, ConvWidth: 72}
	c54 := Config{Segments: 4, OversampleNum: 5, OversampleDen: 4, ConvWidth: 72}
	n = 4 * 4 * 28 * 5 // 2240: M=560, div by 7*4=28 and 4*4=16? 560/28=20, 560/16=35 ok
	p87, err := NewPlan(n, c87)
	if err != nil {
		t.Fatal(err)
	}
	p54, err := NewPlan(n, c54)
	if err != nil {
		t.Fatal(err)
	}
	if !(p54.EstimatedError() < p87.EstimatedError()) {
		t.Errorf("mu=5/4 bound %g not better than mu=8/7 bound %g",
			p54.EstimatedError(), p87.EstimatedError())
	}
}

func TestInvalidLengths(t *testing.T) {
	if _, err := NewPlan(1000, DefaultConfig()); err == nil {
		t.Error("1000 is not a valid default-config length")
	}
	ok, next := ValidLength(1000, DefaultConfig())
	if ok {
		t.Error("1000 reported valid")
	}
	if next%448 != 0 || next < 1000 {
		t.Errorf("suggested %d", next)
	}
	if ok, n := ValidLength(next, DefaultConfig()); !ok || n != next {
		t.Errorf("suggested length %d not accepted", next)
	}
	if _, err := NewPlan(next, DefaultConfig()); err != nil {
		t.Errorf("suggested length rejected: %v", err)
	}
}

func TestFFTAndIFFT(t *testing.T) {
	for _, n := range []int{16, 100, 101} {
		x := ref.RandomVector(n, int64(n))
		y, err := FFT(x)
		if err != nil {
			t.Fatal(err)
		}
		if e := cvec.RelErrL2(y, ref.DFT(x)); e > 1e-11 {
			t.Errorf("n=%d FFT error %g", n, e)
		}
		z, err := IFFT(y)
		if err != nil {
			t.Fatal(err)
		}
		if e := cvec.RelErrL2(z, x); e > 1e-12 {
			t.Errorf("n=%d IFFT round trip %g", n, e)
		}
	}
}

func TestClusterForward(t *testing.T) {
	n := validN(8)
	x := ref.RandomVector(n, 4)
	want, _ := FFT(x)
	for _, ranks := range []int{1, 2, 4, 8} {
		cl, err := NewCluster(ranks, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		got := make([]complex128, n)
		stats, err := cl.Forward(got, x)
		if err != nil {
			t.Fatal(err)
		}
		if e := cvec.RelErrL2(got, want); e > 1e-7 {
			t.Errorf("ranks=%d: error %g", ranks, e)
		}
		if len(stats.PhaseSeconds) == 0 {
			t.Errorf("ranks=%d: no phase stats", ranks)
		}
		if cl.Ranks() != ranks {
			t.Errorf("Ranks() = %d", cl.Ranks())
		}
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(0, DefaultConfig()); err == nil {
		t.Error("0 ranks accepted")
	}
	if _, err := NewCluster(3, DefaultConfig()); err == nil {
		t.Error("8 segments over 3 ranks accepted")
	}
	cl, _ := NewCluster(2, DefaultConfig())
	if _, err := cl.Forward(make([]complex128, 10), make([]complex128, 100)); err == nil {
		t.Error("short dst accepted")
	}
}

func TestSpectralContract(t *testing.T) {
	// A tone at bin f produces amplitude n at exactly that output index —
	// the in-order property, end to end through the public API.
	n := validN(4)
	plan, err := NewPlan(n, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bin := n/3 + 7
	x := ref.Tones(n, []int{bin}, []complex128{2i})
	got := make([]complex128, n)
	if err := plan.Forward(got, x); err != nil {
		t.Fatal(err)
	}
	if d := cmplx.Abs(got[bin] - complex(0, 2*float64(n))); d > 1e-5*float64(n) {
		t.Errorf("tone bin value %v", got[bin])
	}
	// Energy elsewhere is at the noise floor.
	got[bin] = 0
	if r := cvec.L2Norm(got) / (2 * float64(n)); r > 1e-5 {
		t.Errorf("off-bin energy ratio %g", r)
	}
	_ = math.Pi
}

func TestClusterInverseRoundTrip(t *testing.T) {
	n := validN(8)
	x := ref.RandomVector(n, 8)
	cl, err := NewCluster(4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	y := make([]complex128, n)
	z := make([]complex128, n)
	if _, err := cl.Forward(y, x); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Inverse(z, y); err != nil {
		t.Fatal(err)
	}
	if e := cvec.RelErrL2(z, x); e > 1e-6 {
		t.Errorf("cluster round trip error %g", e)
	}
}
