#!/bin/sh
# Tier-2 pre-PR gate: build, vet, repo-native static analysis (including
# the shapecheck symbolic length contracts), the compiler escape- and
# bounds-check-budget gates on the hot kernels, and the race-clean
# concurrency gate over the packages that spawn goroutines. Tier-1
# (go build ./... && go test ./...) must of course also pass; this script
# layers the discipline checks on top.
#
# Every gate runs even if an earlier one fails, so one CI run reports all
# broken gates; each gate prints its wall-clock time, and the script exits
# nonzero at the end if any gate failed.
#
# Run from anywhere inside the repo:
#
#   ./scripts/check.sh
cd "$(dirname "$0")/.." || exit 2

failures=""

run_gate() {
    name="$1"
    shift
    echo "== $name"
    start=$(date +%s)
    if "$@"; then
        status="ok"
    else
        status="FAIL"
        failures="$failures '$name'"
    fi
    end=$(date +%s)
    echo "-- $name: $status ($((end - start))s)"
}

run_gate "go build ./..." go build ./...
run_gate "go vet ./..." go vet ./...
# The combined run doubles as the hard per-analyzer wall-time gate: an
# analyzer over its checked-in budget (or a budget entry out of sync with
# the suite) fails CI even with zero findings.
run_gate "soilint ./..." go run ./cmd/soilint -timing-budget-file timing_budget.json ./...

# The concurrency-lifecycle, resource-lifecycle, protocol-conformance and
# wire-taint analyzers also gate individually: a regression then names the
# failing check in the gate summary instead of hiding inside the combined
# run (the loader cache makes the repeats cheap).
for check in goleak chanlife deadlineflow lockorder poolflow closeflow wireconform taintflow intflow codecflow; do
    run_gate "soilint -checks $check" go run ./cmd/soilint -checks "$check" ./...
done
run_gate "escapebudget (hot-kernel escape gate)" go run ./cmd/escapebudget
run_gate "bcebudget (bounds-check gate)" go run ./cmd/bcebudget
run_gate "go test -race (concurrency gate)" go test -race ./internal/par ./internal/mpi ./internal/cluster ./internal/dist ./internal/serve ./internal/wire ./client
run_gate "go test -race (fault-injection sweep)" go test -race ./internal/faultcomm ./internal/testutil

# Fuzz smoke: each untrusted decode surface gets a brief randomized pass
# beyond the checked-in corpus — the wire frame codec and the payload block
# codecs. `go test -fuzz` accepts exactly one target per invocation, hence
# one gate per target.
for target in FuzzReadHeader FuzzReadVector FuzzFrameSequence; do
    run_gate "fuzz smoke $target" go test ./internal/wire -run '^$' -fuzz "^${target}\$" -fuzztime 5s
done
for target in FuzzCodecRoundTrip FuzzCodecDecode; do
    run_gate "fuzz smoke $target" go test ./internal/codec -run '^$' -fuzz "^${target}\$" -fuzztime 5s
done
run_gate "fuzz smoke FuzzSoARoundTrip" go test ./internal/cvec -run '^$' -fuzz '^FuzzSoARoundTrip$' -fuzztime 5s

# Kernel-backend smoke: both FFT kernel layouts build, run, and agree on a
# Fig-11 size (the full benchmark writes BENCH_kernels.json; the gate only
# proves the harness and the AoS/SoA cross-check).
run_gate "bench_kernels smoke (AoS/SoA cross-check)" env SMOKE=1 ./scripts/bench_kernels.sh

if [ -n "$failures" ]; then
    echo "check.sh: FAILED gates:$failures"
    exit 1
fi
echo "check.sh: all gates green"
