#!/bin/sh
# Tier-2 pre-PR gate: build, vet, repo-native static analysis, and the
# race-clean concurrency gate over the packages that spawn goroutines.
# Tier-1 (go build ./... && go test ./...) must of course also pass; this
# script layers the discipline checks on top.
#
# Run from anywhere inside the repo:
#
#   ./scripts/check.sh
set -e
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== soilint ./..."
go run ./cmd/soilint ./...

echo "== go test -race (concurrency gate)"
go test -race ./internal/par ./internal/mpi ./internal/cluster ./internal/dist

echo "check.sh: all gates green"
