#!/bin/sh
# Payload-codec benchmark: compression ratio x end-to-end throughput for
# each codec (identity, deltaplane, quant) on the two transports that carry
# payloads, at Fig-11 geometry sizes (N = S^2*7*64 for S=8,32).
#
# Three groups of cells, all assembled into BENCH_codec.json:
#
#   codecbench   block-stream ratio, encode/decode MB/s and round-trip
#                error per codec on smooth and noise signals, plus the
#                in-process mpi.AllToAll wall time under mpi.WithCodec
#   serve        soifftd + soiload on loopback, smooth payloads, one cell
#                per codec (the wire-protocol path)
#   soi_dist     cmd/soifft distributed SOI runs, one cell per codec per
#                Fig-11 size (the all-to-all path); the quant cells run at
#                tolerance 0 = the plan's own accuracy budget, so the
#                measured error lands against EstimatedError
#
#   ./scripts/bench_codec.sh            # ~2 min with the default windows
#   DURATION=10s ./scripts/bench_codec.sh
cd "$(dirname "$0")/.." || exit 2

SIZES="${SIZES:-28672,458752}"      # Fig-11 geometry: S^2*7*64, S=8,32
SERVE_N="${SERVE_N:-28672}"
TOL="${TOL:-2.1e-8}"                # paper bound for mu=8/7, B=72
RANKS="${RANKS:-4}"
CONNS="${CONNS:-4}"
PIPELINE="${PIPELINE:-2}"
DURATION="${DURATION:-5s}"
WARMUP="${WARMUP:-2s}"
ADDR="${ADDR:-127.0.0.1:7312}"
OUT="${OUT:-BENCH_codec.json}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"; [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null' EXIT

echo "== building codecbench + soifftd + soiload + soifft"
go build -o "$tmp/codecbench" ./cmd/codecbench || exit 1
go build -o "$tmp/soifftd" ./cmd/soifftd || exit 1
go build -o "$tmp/soiload" ./cmd/soiload || exit 1
go build -o "$tmp/soifft" ./cmd/soifft || exit 1

echo "== codecbench (block streams + mpi.AllToAll, sizes $SIZES)"
"$tmp/codecbench" -sizes "$SIZES" -tol "$TOL" -ranks "$RANKS" \
    >"$tmp/codecbench.json" || exit 1
jq -r '.cells[] | select(.signal == "smooth")
       | "   \(.codec)/smooth n=\(.n): ratio \(.ratio * 100 | floor / 100), max rel err \(.max_rel_err)"' \
    "$tmp/codecbench.json"

# serve_cell <codec>
serve_cell() {
    c="$1"
    echo "== serve/$c (n=$SERVE_N, smooth payloads)"
    "$tmp/soifftd" -listen "$ADDR" >"$tmp/serve_$c.log" 2>&1 &
    srv_pid=$!
    "$tmp/soiload" -addr "$ADDR" -n "$SERVE_N" -c "$CONNS" -pipeline "$PIPELINE" \
        -signal smooth -codec "$c" -codec-tolerance "$TOL" \
        -duration "$DURATION" -warmup "$WARMUP" -json \
        >"$tmp/serve_$c.json" || { cat "$tmp/serve_$c.log"; exit 1; }
    kill -TERM "$srv_pid" && wait "$srv_pid" 2>/dev/null
    srv_pid=""
    jq -r '"   \(.ops_per_s | floor) transforms/s, p99 \(.p99_us | floor)us, \(.errors) errors"' \
        "$tmp/serve_$c.json"
}

serve_cell identity
serve_cell deltaplane
serve_cell quant

# dist_cell <codec> <n> <segments>
dist_cell() {
    c="$1"; n="$2"; segs="$3"
    echo "== soi_dist/$c (N=$n, segments=$segs, ranks=$RANKS)"
    "$tmp/soifft" -n "$n" -ranks "$RANKS" -segments "$segs" -codec "$c" -json \
        >"$tmp/dist_${c}_${n}.json" || { cat "$tmp/dist_${c}_${n}.json"; exit 1; }
    jq -r '"   wall \(.wall_s * 1000 | floor)ms, rel err \(.rel_err_l2), designed bound \(.estimated_error)"' \
        "$tmp/dist_${c}_${n}.json"
}

for c in identity deltaplane quant; do
    dist_cell "$c" 28672 8
    dist_cell "$c" 458752 32
done

jq -s '.' "$tmp"/dist_*.json >"$tmp/dist_all.json"

jq -n \
    --slurpfile cb "$tmp/codecbench.json" \
    --slurpfile si "$tmp/serve_identity.json" \
    --slurpfile sd "$tmp/serve_deltaplane.json" \
    --slurpfile sq "$tmp/serve_quant.json" \
    --slurpfile dist "$tmp/dist_all.json" \
    --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    --arg goos "$(go env GOOS)" --arg goarch "$(go env GOARCH)" \
    --arg nproc "$(nproc)" \
    '{
        bench: "codec",
        date: $date,
        host: {goos: $goos, goarch: $goarch, cpus: ($nproc | tonumber)},
        codecbench: $cb[0],
        serve: {identity: $si[0], deltaplane: $sd[0], quant: $sq[0]},
        soi_dist: $dist[0],
        headline: {
            smooth_ratio_deltaplane: ([$cb[0].cells[] | select(.codec == "deltaplane" and .signal == "smooth") | .ratio] | min),
            smooth_ratio_quant: ([$cb[0].cells[] | select(.codec == "quant" and .signal == "smooth") | .ratio] | min),
            quant_tol: $cb[0].tol,
            quant_max_rel_err: ([$cb[0].cells[] | select(.codec == "quant") | .max_rel_err] | max),
            quant_dist_err_vs_bound: ([$dist[0][] | select(.codec == "quant") | (.rel_err_l2 / .estimated_error)] | max),
            serve_rel_throughput_deltaplane: ($sd[0].ops_per_s / $si[0].ops_per_s),
            serve_rel_throughput_quant: ($sq[0].ops_per_s / $si[0].ops_per_s)
        }
    }' >"$OUT" || exit 1

echo "== wrote $OUT"
jq '.headline' "$OUT"
