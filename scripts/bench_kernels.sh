#!/bin/sh
# Kernel-backend benchmark: AoS (interleaved complex128) against SoA
# (split Re/Im planes) on the same plans and the same AoS-facing API, at
# the Fig-11 geometry sizes. Three engines per size — the 6-step opt
# transform with a forced backend, the plain Stockham plan, and the
# lane-interleaved batch — each as a before/after GFLOPS pair, assembled
# into BENCH_kernels.json with host metadata and the SoA/AoS headline
# ratios.
#
#   ./scripts/bench_kernels.sh             # ~1 min with the defaults
#   DURATION=5s ./scripts/bench_kernels.sh
#   SMOKE=1 ./scripts/bench_kernels.sh     # check.sh gate: tiny budget, no
#                                          # BENCH_kernels.json rewrite
cd "$(dirname "$0")/.." || exit 2

SIZES="${SIZES:-28672,458752}"      # Fig-11 geometry: S^2*7*64, S=8,32
DURATION="${DURATION:-2s}"
WORKERS="${WORKERS:-0}"
LANES="${LANES:-8}"
ROUNDS="${ROUNDS:-3}"               # interleaved AoS/SoA rounds, best-of
OUT="${OUT:-BENCH_kernels.json}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== building kernelbench"
go build -o "$tmp/kernelbench" ./cmd/kernelbench || exit 1

if [ -n "$SMOKE" ]; then
    # Smoke mode proves the harness end to end — both backends build, run,
    # and cross-check on a small size — without touching the pinned
    # benchmark document.
    "$tmp/kernelbench" -sizes 28672 -duration 50ms -lanes "$LANES" \
        >"$tmp/kernels.json" || exit 1
    jq -e '.cells | length >= 6' "$tmp/kernels.json" >/dev/null || {
        echo "bench_kernels.sh: smoke run produced too few cells"
        exit 1
    }
    # A benchmark of a broken kernel is worse than no benchmark: every SoA
    # cell must still agree with its AoS twin.
    jq -e '[.cells[] | select(.backend == "soa") | .rel_err_vs_aos]
           | all(. < 1e-9)' "$tmp/kernels.json" >/dev/null || {
        echo "bench_kernels.sh: SoA cells disagree with AoS"
        jq '.cells' "$tmp/kernels.json"
        exit 1
    }
    echo "bench_kernels.sh: smoke ok"
    exit 0
fi

echo "== kernelbench (sizes $SIZES, $DURATION per cell, best of $ROUNDS rounds)"
"$tmp/kernelbench" -sizes "$SIZES" -duration "$DURATION" \
    -workers "$WORKERS" -lanes "$LANES" -rounds "$ROUNDS" >"$tmp/kernels.json" || exit 1

jq -n \
    --slurpfile kb "$tmp/kernels.json" \
    --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    --arg goos "$(go env GOOS)" --arg goarch "$(go env GOARCH)" \
    --arg nproc "$(nproc)" \
    '$kb[0] + {
        date: $date,
        host: {goos: $goos, goarch: $goarch, cpus: ($nproc | tonumber)}
    }' >"$OUT" || exit 1

echo "== wrote $OUT"
jq '.headline' "$OUT"
