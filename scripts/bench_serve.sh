#!/bin/sh
# Serving-layer A/B benchmark: soifftd + soiload on loopback, one hot size.
#
# Four cells, varying the two batching knobs independently:
#
#   batching_on    server -max-batch 32, clients send 16-transform frames
#   coalesce_only  server -max-batch 32, clients send single-transform frames
#   frame_only     server -max-batch 1,  clients send 16-transform frames
#   batching_off   server -max-batch 1,  clients send single-transform frames
#
# batching_off is the batch-size-1 configuration (every kernel call executes
# exactly one transform); batching_on is the demo configuration. The script
# writes BENCH_serve.json at the repo root with all four soiload reports and
# the on/off speedup.
#
#   ./scripts/bench_serve.sh            # ~1 min with the default windows
#   DURATION=10s ./scripts/bench_serve.sh
cd "$(dirname "$0")/.." || exit 2

N="${N:-64}"
CONNS="${CONNS:-8}"
PIPELINE="${PIPELINE:-4}"
DURATION="${DURATION:-5s}"
WARMUP="${WARMUP:-2s}"
ADDR="${ADDR:-127.0.0.1:7311}"
OUT="${OUT:-BENCH_serve.json}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"; [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null' EXIT

echo "== building soifftd + soiload"
go build -o "$tmp/soifftd" ./cmd/soifftd || exit 1
go build -o "$tmp/soiload" ./cmd/soiload || exit 1

# run_cell <name> <max-batch> <count>
run_cell() {
    name="$1"; max_batch="$2"; count="$3"
    echo "== $name (server -max-batch $max_batch, soiload -count $count)"
    "$tmp/soifftd" -listen "$ADDR" -max-batch "$max_batch" -max-inflight 1024 \
        >"$tmp/$name.log" 2>&1 &
    srv_pid=$!
    "$tmp/soiload" -addr "$ADDR" -n "$N" -count "$count" -c "$CONNS" \
        -pipeline "$PIPELINE" -duration "$DURATION" -warmup "$WARMUP" -json \
        >"$tmp/$name.json" || { cat "$tmp/$name.log"; exit 1; }
    kill -TERM "$srv_pid" && wait "$srv_pid" 2>/dev/null
    srv_pid=""
    jq -r '"   \(.ops_per_s | floor) transforms/s, server mean batch \(.server_mean_batch), p99 \(.p99_us)us"' \
        "$tmp/$name.json"
}

run_cell batching_on   32 16
run_cell coalesce_only 32 1
run_cell frame_only    1  16
run_cell batching_off  1  1

jq -n \
    --slurpfile on "$tmp/batching_on.json" \
    --slurpfile co "$tmp/coalesce_only.json" \
    --slurpfile fr "$tmp/frame_only.json" \
    --slurpfile off "$tmp/batching_off.json" \
    --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    --arg goos "$(go env GOOS)" --arg goarch "$(go env GOARCH)" \
    --arg nproc "$(nproc)" \
    '{
        bench: "serve",
        date: $date,
        host: {goos: $goos, goarch: $goarch, cpus: ($nproc | tonumber)},
        batching_on: $on[0],
        coalesce_only: $co[0],
        frame_only: $fr[0],
        batching_off: $off[0],
        speedup_on_vs_off: ($on[0].ops_per_s / $off[0].ops_per_s),
        speedup_coalesce_only: ($co[0].ops_per_s / $off[0].ops_per_s)
    }' >"$OUT" || exit 1

echo "== wrote $OUT"
jq '{speedup_on_vs_off, speedup_coalesce_only,
     mean_batch_on: .batching_on.server_mean_batch,
     mean_batch_off: .batching_off.server_mean_batch}' "$OUT"
