package soifft

import (
	"testing"
	"time"

	"soifft/internal/cvec"
	"soifft/internal/faultcomm"
	"soifft/internal/mpi"
	"soifft/internal/ref"
)

// TestClusterForwardUnderLosslessFaults runs the public distributed API
// over a transport that delays, duplicates, and reorders messages. Those
// faults must be absorbed by the sequencing layer: the transform result is
// identical in contract to a clean run.
func TestClusterForwardUnderLosslessFaults(t *testing.T) {
	n := validN(8)
	x := ref.RandomVector(n, 21)
	want, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sched := faultcomm.NewSchedule(5, 5*time.Second)
	sched.Delay = 0.3
	sched.MaxDelay = time.Millisecond
	sched.Dup = 0.3
	sched.Reorder = 0.3
	inj := faultcomm.New(sched)
	cl.WrapComm = func(c mpi.Comm) mpi.Comm { return inj.Wrap(c) }
	got := make([]complex128, n)
	if _, err := cl.Forward(got, x); err != nil {
		t.Fatalf("lossless faults failed the transform: %v\ntrace:\n%s", err, inj.Trace())
	}
	if e := cvec.RelErrL2(got, want); e > 1e-7 {
		t.Fatalf("lossless faults changed the answer: rel err %g", e)
	}
}

// TestClusterForwardCrashSurfacesTypedError kills one rank partway through
// and requires Forward to return a typed transport error promptly — the
// public API inherits the no-hang contract.
func TestClusterForwardCrashSurfacesTypedError(t *testing.T) {
	n := validN(8)
	x := ref.RandomVector(n, 22)
	cl, err := NewCluster(4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sched := faultcomm.NewSchedule(9, 2*time.Second)
	sched.CrashRank = 1
	sched.CrashOp = 0
	inj := faultcomm.New(sched)
	cl.WrapComm = func(c mpi.Comm) mpi.Comm { return inj.Wrap(c) }
	start := time.Now()
	_, err = cl.Forward(make([]complex128, n), x)
	if err == nil {
		t.Fatal("crashed rank produced no error from Forward")
	}
	if !faultcomm.Typed(err) {
		t.Fatalf("crash error not typed: %v", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("crash took %v to surface", d)
	}

	// The cluster object stays usable after a faulty run: clearing the hook
	// restores clean operation on the cached plan.
	cl.WrapComm = nil
	want, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]complex128, n)
	if _, err := cl.Forward(got, x); err != nil {
		t.Fatalf("clean run after faulty run failed: %v", err)
	}
	if e := cvec.RelErrL2(got, want); e > 1e-7 {
		t.Fatalf("clean run after faulty run wrong: rel err %g", e)
	}
}
