package soifft

import (
	"fmt"
	"io"

	"soifft/internal/soi"
	"soifft/internal/window"
)

// SaveWisdom writes the plan's window design (the expensive, deterministic
// part of planning — FFTW calls this "wisdom") to w. A later run can
// rebuild an equivalent plan without redoing the design search via
// NewPlanFromWisdom.
func (p *Plan) SaveWisdom(w io.Writer) error {
	return p.inner.Win.Save(w)
}

// NewPlanFromWisdom builds a plan from saved wisdom. The wisdom pins N,
// Segments, the oversampling factor and the convolution width; cfg supplies
// only the execution knobs (Workers, Optimizations) — its structural fields
// must be zero or match the wisdom.
func NewPlanFromWisdom(r io.Reader, cfg Config) (*Plan, error) {
	win, err := window.Load(r)
	if err != nil {
		return nil, err
	}
	if cfg.Segments != 0 && cfg.Segments != win.Segments {
		return nil, fmt.Errorf("soifft: wisdom has %d segments, config wants %d", win.Segments, cfg.Segments)
	}
	if cfg.ConvWidth != 0 && cfg.ConvWidth != win.B {
		return nil, fmt.Errorf("soifft: wisdom has B=%d, config wants %d", win.B, cfg.ConvWidth)
	}
	// The oversampling factor is a pair: a config that pins either half of
	// mu must match the wisdom on both (a lone OversampleDen used to slip
	// through and be silently overridden by the wisdom's value).
	if (cfg.OversampleNum != 0 || cfg.OversampleDen != 0) &&
		(cfg.OversampleNum != win.NMu || cfg.OversampleDen != win.DMu) {
		return nil, fmt.Errorf("soifft: wisdom has mu=%d/%d, config wants %d/%d",
			win.NMu, win.DMu, cfg.OversampleNum, cfg.OversampleDen)
	}
	// Derive the execution options through the normal path using the
	// wisdom's structural parameters.
	full := cfg
	full.Segments = win.Segments
	full.OversampleNum, full.OversampleDen = win.NMu, win.DMu
	full.ConvWidth = win.B
	_, opts, err := full.params(win.N)
	if err != nil {
		return nil, err
	}
	inner, err := soi.NewPlanFromFilter(win, opts)
	if err != nil {
		return nil, err
	}
	return &Plan{inner: inner}, nil
}
