module soifft

go 1.22
