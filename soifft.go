// Package soifft is a pure-Go implementation of the Segment-of-Interest
// (SOI) FFT — the low-communication distributed 1D FFT factorization of
//
//	Park, Bikshandi, Vaidyanathan, Tang, Dubey, Kim.
//	"Tera-Scale 1D FFT with Low-Communication Algorithm and Intel Xeon Phi
//	Coprocessors", SC '13.
//
// The SOI factorization computes an in-order N-point DFT across P segments
// with a single all-to-all exchange (a conventional distributed
// Cooley-Tukey transform needs three), at the cost of an oversampling
// factor mu = 8/7 and a width-B convolution:
//
//	y = I_P (x) ( W^-1 Proj F_M' ) Perm ( I_M' (x) F_P ) W x
//
// # Quick start
//
//	plan, err := soifft.NewPlan(n, soifft.DefaultConfig())
//	...
//	err = plan.Forward(dst, src) // dst ~ FFT(src), relative error ~1e-8
//
// The library also ships a serial mixed-radix FFT (used internally and
// exposed via FFT/IFFT), an in-process distributed runtime (Cluster), the
// Cooley-Tukey distributed baseline, the paper's analytic performance
// model, and a cluster simulator that regenerates every figure of the
// paper's evaluation — see cmd/soibench and EXPERIMENTS.md.
//
// # Accuracy
//
// SOI is an approximate factorization: aliasing leakage through the
// convolution window bounds the relative error. With the paper's
// parameters (mu = 8/7, B = 72) the bound is ~2e-8; with mu = 5/4 it drops
// below 1e-9. Plan.EstimatedError reports the designed bound.
package soifft

import (
	"soifft/internal/conv"
	"soifft/internal/fft"
	"soifft/internal/soi"
	"soifft/internal/window"
)

// Config selects the SOI parameters and implementation strategies.
type Config struct {
	// Segments is the number of spectrum segments P (the algebraic P of
	// the factorization). Default 8. N/Segments must be a multiple of
	// OversampleDen*Segments.
	Segments int
	// OversampleNum/OversampleDen form mu > 1. Default 8/7 (Table 3 of the
	// paper); 5/4 trades ~12% more flops for ~30x better accuracy.
	OversampleNum, OversampleDen int
	// ConvWidth is the convolution width B in blocks of Segments taps.
	// Default 72 (the paper's value).
	ConvWidth int
	// Workers bounds intra-node parallelism; 0 means GOMAXPROCS.
	Workers int
	// Optimizations selects the node-local implementation strategies.
	// The zero value is fully optimized.
	Optimizations Optimizations
}

// Optimizations toggles the paper's node-local optimizations off, for
// ablation studies (Figures 10 and 11). The zero value enables everything.
type Optimizations struct {
	// NaiveLocalFFT uses the 13-sweep 6-step local FFT (Fig. 4a) instead
	// of the 4-sweep fused implementation (Fig. 4b).
	NaiveLocalFFT bool
	// NaiveConvolution uses the row-wise convolution (Fig. 6a) instead of
	// the loop-interchanged, circularly buffered form (Fig. 6b/7).
	NaiveConvolution bool
	// NoFuseDemod applies demodulation as a separate pass instead of
	// fusing it into the local FFT's final sweep.
	NoFuseDemod bool
}

// DefaultConfig returns the paper's production configuration.
func DefaultConfig() Config {
	return Config{
		Segments:      8,
		OversampleNum: 8, OversampleDen: 7,
		ConvWidth: 72,
	}
}

// Canonical returns cfg with every structural default made explicit
// (Segments, OversampleNum/Den, ConvWidth). Two configs that canonicalize
// equal produce interchangeable plans for a given length, which makes the
// canonical form the natural plan-cache key (internal/serve keys its LRU on
// it) and the stable identity for wisdom files.
func (c Config) Canonical() Config {
	if c.Segments == 0 {
		c.Segments = 8
	}
	if c.OversampleNum == 0 {
		c.OversampleNum, c.OversampleDen = 8, 7
	}
	if c.ConvWidth == 0 {
		c.ConvWidth = 72
	}
	return c
}

// params converts the public config to the internal parameter set.
func (c Config) params(n int) (window.Params, soi.Options, error) {
	c = c.Canonical()
	p := window.Params{
		N:        n,
		Segments: c.Segments,
		NMu:      c.OversampleNum,
		DMu:      c.OversampleDen,
		B:        c.ConvWidth,
	}
	if err := p.Validate(); err != nil {
		return p, soi.Options{}, err
	}
	opts := soi.Options{
		Workers:     c.Workers,
		ConvVariant: conv.Buffered,
		FFTVariant:  fft.SixStepOpt,
		NoFuseDemod: c.Optimizations.NoFuseDemod,
	}
	if c.Optimizations.NaiveConvolution {
		opts.ConvVariant = conv.Baseline
	}
	if c.Optimizations.NaiveLocalFFT {
		opts.FFTVariant = fft.SixStepNaive
	}
	return p, opts, nil
}

// Plan is a reusable SOI transform plan for one length. Safe for concurrent
// use.
type Plan struct {
	inner *soi.Plan
}

// NewPlan designs the SOI operator for length n.
func NewPlan(n int, cfg Config) (*Plan, error) {
	p, opts, err := cfg.params(n)
	if err != nil {
		return nil, err
	}
	inner, err := soi.NewPlan(p, opts)
	if err != nil {
		return nil, err
	}
	return &Plan{inner: inner}, nil
}

// N returns the transform length.
//
//soilint:shape return == inner.Win.N
func (p *Plan) N() int { return p.inner.Win.N }

// Segments returns the segment count.
//
//soilint:shape return == inner.Win.Segments
func (p *Plan) Segments() int { return p.inner.Win.Segments }

// EstimatedError returns the designed relative-accuracy bound of the plan.
func (p *Plan) EstimatedError() float64 { return p.inner.EstimatedError() }

// Forward computes the unnormalized in-order forward DFT of src into dst.
// Both must have length >= N; dst must not alias src.
//
//soilint:shape len(dst) >= inner.Win.N
//soilint:shape len(src) >= inner.Win.N
func (p *Plan) Forward(dst, src []complex128) error { return p.inner.Forward(dst, src) }

// Inverse computes the normalized inverse DFT of src into dst.
//
//soilint:shape len(dst) >= inner.Win.N
//soilint:shape len(src) >= inner.Win.N
func (p *Plan) Inverse(dst, src []complex128) error { return p.inner.Inverse(dst, src) }

// FFT computes the unnormalized forward DFT of x by the library's exact
// mixed-radix kernel (any length; O(n log n)). It is the reference the SOI
// path is validated against and a convenient general-purpose FFT.
//
//soilint:shape len(return) == len(x)
func FFT(x []complex128) ([]complex128, error) {
	p, err := fft.NewPlan(len(x))
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(x))
	p.Forward(out, x)
	return out, nil
}

// IFFT computes the normalized inverse DFT of x.
//
//soilint:shape len(return) == len(x)
func IFFT(x []complex128) ([]complex128, error) {
	p, err := fft.NewPlan(len(x))
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(x))
	p.Inverse(out, x)
	return out, nil
}

// ValidLength reports whether n admits an SOI plan under cfg, and if not,
// the smallest n' >= n that does (n' is a multiple of the per-segment
// chunk granularity Segments^2 * OversampleDen).
func ValidLength(n int, cfg Config) (ok bool, next int) {
	if cfg.Segments == 0 {
		cfg.Segments = 8
	}
	if cfg.OversampleDen == 0 {
		cfg.OversampleDen = 7
	}
	gran := cfg.Segments * cfg.Segments * cfg.OversampleDen
	if n > 0 && n%gran == 0 {
		return true, n
	}
	next = (n/gran + 1) * gran
	return false, next
}
