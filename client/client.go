// Package client is the Go client for soifftd, the batched FFT server
// (internal/serve, protocol in internal/wire).
//
// A Client owns one connection and is safe for concurrent use: calls from
// many goroutines are pipelined over the single connection (each request
// carries an ID; responses arrive in completion order and are matched back
// to their callers). Pipelining is what lets the server coalesce concurrent
// same-length requests into one batched kernel call, so for throughput,
// prefer one shared Client with many calling goroutines over many
// single-call connections.
//
//	cl, err := client.Dial("localhost:7311")
//	...
//	dst := make([]complex128, len(src))
//	err = cl.Forward(ctx, dst, src) // dst ~ FFT(src)
//
// Typed errors cross the wire: a shed request returns an error satisfying
// errors.Is(err, wire.ErrOverloaded); an expired deadline returns
// wire.ErrDeadlineExceeded; a draining server returns wire.ErrShuttingDown.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"soifft/internal/codec"
	"soifft/internal/wire"
)

// Alg re-exports the wire algorithm selector.
type Alg = wire.Alg

// Algorithm selectors: the server picks (Auto), the exact mixed-radix FFT
// (Exact), or the paper's approximate SOI factorization (SOI).
const (
	Auto  = wire.AlgAuto
	Exact = wire.AlgExact
	SOI   = wire.AlgSOI
)

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("soifft client: connection closed")

// defaultIOTimeout bounds each request write and each in-frame response
// read when no sooner context deadline applies. See SetIOTimeout.
const defaultIOTimeout = time.Minute

// pending tracks one in-flight request: the reader goroutine fills dst and
// signals ch.
type pending struct {
	dst []complex128
	ch  chan error
}

// Client is a pipelined soifftd connection. Safe for concurrent use.
type Client struct {
	alg   Alg
	codec codec.Codec // nil = identity (raw payloads, protocol version 1)

	// ioTimeout (nanoseconds) bounds each request write and each in-frame
	// response read; between frames the reader parks without a deadline.
	ioTimeout atomic.Int64

	wmu    sync.Mutex // serializes request frames onto bw
	conn   net.Conn
	bw     *bufio.Writer
	nextID uint64

	pmu      sync.Mutex
	inflight map[uint64]*pending
	stats    map[uint64]chan statsResult
	closed   error // non-nil once the connection is unusable

	readerDone chan struct{}
}

type statsResult struct {
	text string
	err  error
}

// Dial connects to a soifftd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return New(conn), nil
}

// New wraps an established connection (useful for tests and custom dialers).
func New(conn net.Conn) *Client {
	c := &Client{
		conn:       conn,
		bw:         bufio.NewWriterSize(conn, 64<<10),
		inflight:   make(map[uint64]*pending),
		stats:      make(map[uint64]chan statsResult),
		readerDone: make(chan struct{}),
	}
	c.ioTimeout.Store(int64(defaultIOTimeout))
	go c.readLoop()
	return c
}

// SetAlg sets the algorithm selector used by Forward/Inverse/Batch
// (default Auto). Not safe to race with in-flight calls.
func (c *Client) SetAlg(a Alg) { c.alg = a }

// SetCodec selects the payload compression codec by name ("identity",
// "deltaplane", "quant"); tol is the Quant per-element relative error
// bound, ignored otherwise. With the identity codec the client speaks
// protocol version 1 (raw payloads), so it interoperates with pre-codec
// servers; any other codec requires a version-2 server. Responses decode
// by their own headers, so the server may answer with a different codec
// (e.g. after clamping a lossy request against an SOI accuracy budget).
// Not safe to race with in-flight calls.
func (c *Client) SetCodec(name string, tol float64) error {
	cdc, err := codec.ByName(name, tol)
	if err != nil {
		return err
	}
	if cdc.ID() == codec.Identity {
		cdc = nil
	}
	c.codec = cdc
	return nil
}

// SetIOTimeout bounds each request write and each in-frame response read
// (default one minute); a sooner context deadline takes precedence for
// writes. A server that stops reading wedges the writer through TCP
// backpressure, and one that stalls mid-response wedges the shared
// demultiplexer — the bound turns both into errors. Non-positive values
// are ignored.
func (c *Client) SetIOTimeout(d time.Duration) {
	if d > 0 {
		c.ioTimeout.Store(int64(d))
	}
}

// writeDeadline bounds one request write: the I/O timeout from now, or the
// context deadline if that is sooner.
func (c *Client) writeDeadline(ctx context.Context) time.Time {
	wd := time.Now().Add(time.Duration(c.ioTimeout.Load()))
	if dl, ok := ctx.Deadline(); ok && dl.Before(wd) {
		wd = dl
	}
	return wd
}

// Close tears the connection down; in-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// Forward computes the unnormalized forward DFT of src into dst on the
// server. len(dst) must equal len(src). Respects ctx deadline/cancellation;
// the deadline also propagates to the server's admission control.
func (c *Client) Forward(ctx context.Context, dst, src []complex128) error {
	return c.transform(ctx, dst, src, 1, false)
}

// Inverse computes the normalized inverse DFT of src into dst on the server.
func (c *Client) Inverse(ctx context.Context, dst, src []complex128) error {
	return c.transform(ctx, dst, src, 1, true)
}

// Batch computes count independent transforms of n = len(src)/count points
// each (transform i occupies src[i*n:(i+1)*n], result in the same span of
// dst) in a single request frame.
func (c *Client) Batch(ctx context.Context, dst, src []complex128, count int, inverse bool) error {
	return c.transform(ctx, dst, src, count, inverse)
}

func (c *Client) transform(ctx context.Context, dst, src []complex128, count int, inverse bool) error {
	if len(dst) != len(src) {
		return fmt.Errorf("soifft client: len(dst)=%d != len(src)=%d", len(dst), len(src))
	}
	if count < 1 || len(src)%count != 0 {
		return fmt.Errorf("soifft client: count %d does not divide %d points", count, len(src))
	}
	n := len(src) / count
	h := wire.Header{
		Alg:   c.alg,
		Count: uint32(count),
		N:     uint64(n),
	}
	// Identity payloads go out as protocol version 1 — byte-identical to a
	// pre-codec client, so old servers need no fallback logic. A compressing
	// codec needs the v2 header fields and buffers the encoded payload once
	// to learn its declared length.
	var enc []byte
	if c.codec == nil {
		h.Version = 1
		h.PayloadLen = uint64(len(src)) * wire.BytesPerElem
	} else {
		enc = codec.AppendVector(nil, c.codec, src)
		h.Codec = c.codec.ID()
		h.CodecParam = codec.Param(c.codec)
		h.PayloadLen = uint64(len(enc))
	}
	switch {
	case count > 1:
		h.Type = wire.TBatch
		if inverse {
			h.Flags = wire.FlagInverse
		}
	case inverse:
		h.Type = wire.TInverse
	default:
		h.Type = wire.TForward
	}
	if dl, ok := ctx.Deadline(); ok {
		h.Deadline = dl.UnixNano()
	}

	p := &pending{dst: dst, ch: make(chan error, 1)}
	id, err := c.register(p, nil)
	if err != nil {
		return err
	}
	h.ReqID = id

	c.wmu.Lock()
	err = c.conn.SetWriteDeadline(c.writeDeadline(ctx))
	if err == nil {
		err = wire.WriteHeader(c.bw, &h)
	}
	if err == nil {
		if enc != nil {
			_, err = c.bw.Write(enc)
		} else {
			err = wire.WriteVector(c.bw, src)
		}
	}
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.unregister(id)
		return fmt.Errorf("soifft client: sending request: %w", err)
	}

	select {
	case err := <-p.ch:
		return err
	case <-ctx.Done():
		// The response may still arrive; the reader discards it into dst
		// only if the pending entry survives, so remove it first.
		c.unregister(id)
		return ctx.Err()
	}
}

// Stats fetches the server's statistics snapshot as a name -> value map
// (the parsed form of the metrics text; see internal/serve.MetricsText).
func (c *Client) Stats(ctx context.Context) (map[string]float64, error) {
	ch := make(chan statsResult, 1)
	id, err := c.register(nil, ch)
	if err != nil {
		return nil, err
	}
	h := wire.Header{Type: wire.TStats, ReqID: id}
	if c.codec == nil {
		h.Version = 1 // stay readable by pre-codec servers
	}
	c.wmu.Lock()
	err = c.conn.SetWriteDeadline(c.writeDeadline(ctx))
	if err == nil {
		err = wire.WriteHeader(c.bw, &h)
	}
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.unregister(id)
		return nil, fmt.Errorf("soifft client: sending stats request: %w", err)
	}
	select {
	case res := <-ch:
		if res.err != nil {
			return nil, res.err
		}
		return ParseStats(res.text), nil
	case <-ctx.Done():
		c.unregister(id)
		return nil, ctx.Err()
	}
}

// ParseStats parses metrics text ("name value" lines) into a map.
func ParseStats(text string) map[string]float64 {
	m := make(map[string]float64)
	for _, ln := range strings.Split(text, "\n") {
		name, val, ok := strings.Cut(strings.TrimSpace(ln), " ")
		if !ok {
			continue
		}
		if f, err := strconv.ParseFloat(val, 64); err == nil {
			m[name] = f
		}
	}
	return m
}

// StatsNames returns the sorted metric names in m (stable rendering for
// CLIs).
func StatsNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func (c *Client) register(p *pending, sch chan statsResult) (uint64, error) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.closed != nil {
		return 0, c.closed
	}
	c.nextID++
	id := c.nextID
	if p != nil {
		c.inflight[id] = p
	}
	if sch != nil {
		c.stats[id] = sch
	}
	return id, nil
}

func (c *Client) unregister(id uint64) {
	c.pmu.Lock()
	delete(c.inflight, id)
	delete(c.stats, id)
	c.pmu.Unlock()
}

// take claims the pending entry for id (nil if cancelled/unknown).
func (c *Client) take(id uint64) *pending {
	c.pmu.Lock()
	p := c.inflight[id]
	delete(c.inflight, id)
	c.pmu.Unlock()
	return p
}

func (c *Client) takeStats(id uint64) chan statsResult {
	c.pmu.Lock()
	ch := c.stats[id]
	delete(c.stats, id)
	c.pmu.Unlock()
	return ch
}

// readLoop demultiplexes response frames to their waiting callers.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var fatal error
	for {
		h, err := wire.ReadHeader(br) //soilint:ignore deadlineflow the demultiplexer parks between frames by design; Close fails this read to stop it
		if err != nil {
			fatal = err
			break
		}
		// The header promises a payload: bound the in-frame reads so a
		// server that stalls mid-frame cannot wedge every caller behind a
		// silently stuck demultiplexer.
		if err := c.conn.SetReadDeadline(time.Now().Add(time.Duration(c.ioTimeout.Load()))); err != nil {
			fatal = err
			break
		}
		switch h.Type {
		case wire.TResult:
			// The response header comes from the server, which is just as
			// untrusted as a client is to it: the geometry product is
			// overflow-checked and tied to PayloadLen (exactly for identity,
			// through the codec size algebra otherwise) before any read is
			// sized from it. An inconsistent response is a protocol
			// violation the stream cannot be resynced past.
			p := c.take(h.ReqID)
			elems, serr := wire.CheckedSize(h.N, h.Count)
			if serr != nil || wire.CheckTransformPayload(&h) != nil {
				fatal = fmt.Errorf("soifft client: invalid response geometry n=%d count=%d codec=%v payload=%d", h.N, h.Count, h.Codec, h.PayloadLen)
				if p != nil {
					p.ch <- fatal
				}
			} else if p == nil || elems != len(p.dst) {
				// Cancelled caller or geometry mismatch: drop the payload.
				//soilint:taint checked CheckTransformPayload bounded PayloadLen through the codec size algebra for this geometry
				if err := wire.DiscardPayload(br, h.PayloadLen); err != nil { //soilint:ignore intflow same bound: PayloadLen was just validated against the codec's encoded-size cap
					fatal = err
				}
				if p != nil {
					p.ch <- fmt.Errorf("soifft client: server returned %dx%d points, caller expected %d",
						h.Count, h.N, len(p.dst))
				}
			} else if h.Codec != codec.Identity {
				// The response decodes by its own header, not by what this
				// client asked for — the server may have clamped a lossy
				// request to fit an accuracy budget. A corrupt block stream
				// is a typed error; the stream position within the payload is
				// then unknown, so the connection is done.
				rc, rcErr := codec.For(h.Codec, h.CodecParam)
				if rcErr != nil {
					fatal = fmt.Errorf("soifft client: response codec: %w", rcErr)
					p.ch <- fatal
				} else if err := codec.ReadVector(br, rc, p.dst, h.PayloadLen); err != nil {
					p.ch <- fmt.Errorf("soifft client: result payload: %w", err)
					fatal = err
				} else {
					p.ch <- nil
				}
			} else if err := wire.ReadVector(br, p.dst); err != nil {
				p.ch <- err
				fatal = err
			} else {
				p.ch <- nil
			}
		case wire.TError:
			msg, err := wire.ReadText(br, h.PayloadLen)
			if err != nil {
				fatal = err
				break
			}
			if p := c.take(h.ReqID); p != nil {
				p.ch <- wire.ErrFor(h.Code, msg)
			}
		case wire.TStatsResult:
			text, err := wire.ReadText(br, h.PayloadLen)
			if err != nil {
				fatal = err
				break
			}
			if ch := c.takeStats(h.ReqID); ch != nil {
				ch <- statsResult{text: text}
			}
		default:
			fatal = fmt.Errorf("soifft client: unexpected frame type %v", h.Type)
		}
		if fatal != nil {
			break
		}
		// Frame consumed: back to the unbounded idle park.
		if err := c.conn.SetReadDeadline(time.Time{}); err != nil {
			fatal = err
			break
		}
	}

	// Fail everything still in flight.
	c.pmu.Lock()
	c.closed = fmt.Errorf("%w: %v", ErrClosed, fatal)
	inflight := c.inflight
	stats := c.stats
	c.inflight = make(map[uint64]*pending)
	c.stats = make(map[uint64]chan statsResult)
	c.pmu.Unlock()
	for _, p := range inflight {
		p.ch <- c.closedErr()
	}
	for _, ch := range stats {
		ch <- statsResult{err: c.closedErr()}
	}
}

func (c *Client) closedErr() error {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.closed
}

// WaitReady polls addr until a soifftd server accepts a connection or the
// timeout elapses — a convenience for tests and load generators racing a
// freshly started daemon.
func WaitReady(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("soifft client: server at %s not ready after %v: %w", addr, timeout, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
