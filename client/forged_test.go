package client

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"soifft/internal/wire"
)

// forgedPeer wires a Client to an in-process fake server over net.Pipe.
// For each request frame it reads, it calls forge to decide the response
// header and payload, echoing nothing else of the real protocol — the
// point is to hand the demultiplexer exactly the bytes we choose.
func forgedPeer(t *testing.T, forge func(req wire.Header) (wire.Header, []complex128)) *Client {
	t.Helper()
	cs, ss := net.Pipe()
	go func() {
		for {
			h, err := wire.ReadHeader(ss)
			if err != nil {
				return
			}
			if err := wire.DiscardPayload(ss, h.PayloadLen); err != nil {
				return
			}
			rh, payload := forge(h)
			if err := wire.WriteHeader(ss, &rh); err != nil {
				return
			}
			if payload != nil {
				if err := wire.WriteVector(ss, payload); err != nil {
					return
				}
			}
		}
	}()
	cl := New(cs)
	cl.SetIOTimeout(2 * time.Second)
	t.Cleanup(func() {
		cl.Close()
		ss.Close()
	})
	return cl
}

// TestForgedResponseGeometry: a response header whose N*Count*BytesPerElem
// wraps (or disagrees with PayloadLen) must fail the caller with a typed
// protocol error before any allocation or read is sized from it, and must
// tear the connection down — the stream cannot be resynced past a frame
// whose true length is unknowable.
func TestForgedResponseGeometry(t *testing.T) {
	forgeries := []struct {
		name string
		resp wire.Header
	}{
		{
			// 4*(2^62+1)*16 mod 2^64 = 256: a modular check would size a
			// 2^62-element read buffer from this header.
			name: "wrap-forged product",
			resp: wire.Header{Type: wire.TResult, Count: 4, N: 1<<62 + 1, PayloadLen: 16 * wire.BytesPerElem},
		},
		{
			name: "payload disagrees with geometry",
			resp: wire.Header{Type: wire.TResult, Count: 1, N: 8, PayloadLen: 8*wire.BytesPerElem - 1},
		},
		{
			name: "zero geometry with payload",
			resp: wire.Header{Type: wire.TResult, Count: 0, N: 0, PayloadLen: 8 * wire.BytesPerElem},
		},
	}
	for _, tc := range forgeries {
		t.Run(tc.name, func(t *testing.T) {
			cl := forgedPeer(t, func(req wire.Header) (wire.Header, []complex128) {
				rh := tc.resp
				rh.ReqID = req.ReqID
				return rh, nil
			})

			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)

			src := make([]complex128, 8)
			dst := make([]complex128, 8)
			err := cl.Forward(context.Background(), dst, src)
			if err == nil || !strings.Contains(err.Error(), "invalid response geometry") {
				t.Fatalf("Forward against forged response: %v, want invalid-geometry error", err)
			}

			runtime.GC()
			runtime.ReadMemStats(&after)
			if delta := after.TotalAlloc - before.TotalAlloc; delta > 1<<20 {
				t.Errorf("forged response drove %d bytes of allocation, want < 1 MiB", delta)
			}

			// The demultiplexer is down: later calls fail closed instead of
			// reading frames whose framing can no longer be trusted.
			if err := cl.Forward(context.Background(), dst, src); !errors.Is(err, ErrClosed) {
				t.Errorf("Forward after forged response: %v, want ErrClosed", err)
			}
		})
	}
}

// TestForgedResponseWrongSize: a self-consistent response sized for a
// different request fails that caller with a mismatch error, but the
// stream stays alive — the declared payload is trustworthy, so the
// demultiplexer can drop it and keep serving other calls.
func TestForgedResponseWrongSize(t *testing.T) {
	var forgeFirst = true
	cl := forgedPeer(t, func(req wire.Header) (wire.Header, []complex128) {
		if forgeFirst {
			forgeFirst = false
			// Twice the requested points, internally consistent.
			return wire.Header{
				Type: wire.TResult, ReqID: req.ReqID, Count: 1, N: 16,
				PayloadLen: 16 * wire.BytesPerElem,
			}, make([]complex128, 16)
		}
		// Honest echo: right geometry, zero payload values.
		return wire.Header{
			Type: wire.TResult, ReqID: req.ReqID, Count: req.Count, N: req.N,
			PayloadLen: req.PayloadLen,
		}, make([]complex128, int(req.N)*int(req.Count))
	})

	src := make([]complex128, 8)
	dst := make([]complex128, 8)
	err := cl.Forward(context.Background(), dst, src)
	if err == nil || !strings.Contains(err.Error(), "caller expected") {
		t.Fatalf("Forward against wrong-size response: %v, want size-mismatch error", err)
	}
	if err := cl.Forward(context.Background(), dst, src); err != nil {
		t.Fatalf("stream did not survive a well-framed wrong-size response: %v", err)
	}
}
