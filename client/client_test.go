package client

import (
	"context"
	"strings"
	"testing"

	"soifft/internal/wire"
)

func TestParseStats(t *testing.T) {
	m := ParseStats("soifftd_completed_total 42\nsoifftd_mean_batch_size 3.5\n\nmalformed\nbad_value x\n")
	if m["soifftd_completed_total"] != 42 {
		t.Errorf("completed_total = %v", m["soifftd_completed_total"])
	}
	if m["soifftd_mean_batch_size"] != 3.5 {
		t.Errorf("mean_batch_size = %v", m["soifftd_mean_batch_size"])
	}
	if len(m) != 2 {
		t.Errorf("parsed %d entries, want 2: %v", len(m), m)
	}
	names := StatsNames(m)
	if len(names) != 2 || names[0] != "soifftd_completed_total" {
		t.Errorf("StatsNames = %v", names)
	}
}

func TestTransformArgChecks(t *testing.T) {
	// Argument validation happens before any I/O, so a nil-conn client is
	// fine for these.
	c := &Client{}
	ctx := context.Background()
	if err := c.Batch(ctx, make([]complex128, 8), make([]complex128, 7), 1, false); err == nil ||
		!strings.Contains(err.Error(), "len(dst)") {
		t.Errorf("mismatched lengths: %v", err)
	}
	if err := c.Batch(ctx, make([]complex128, 8), make([]complex128, 8), 3, false); err == nil ||
		!strings.Contains(err.Error(), "count") {
		t.Errorf("non-dividing count: %v", err)
	}
}

func TestAlgConstantsMatchWire(t *testing.T) {
	if Auto != wire.AlgAuto || Exact != wire.AlgExact || SOI != wire.AlgSOI {
		t.Fatal("re-exported algorithm selectors diverged from wire")
	}
}
