package client

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"soifft/internal/wire"
)

func TestParseStats(t *testing.T) {
	m := ParseStats("soifftd_completed_total 42\nsoifftd_mean_batch_size 3.5\n\nmalformed\nbad_value x\n")
	if m["soifftd_completed_total"] != 42 {
		t.Errorf("completed_total = %v", m["soifftd_completed_total"])
	}
	if m["soifftd_mean_batch_size"] != 3.5 {
		t.Errorf("mean_batch_size = %v", m["soifftd_mean_batch_size"])
	}
	if len(m) != 2 {
		t.Errorf("parsed %d entries, want 2: %v", len(m), m)
	}
	names := StatsNames(m)
	if len(names) != 2 || names[0] != "soifftd_completed_total" {
		t.Errorf("StatsNames = %v", names)
	}
}

func TestTransformArgChecks(t *testing.T) {
	// Argument validation happens before any I/O, so a nil-conn client is
	// fine for these.
	c := &Client{}
	ctx := context.Background()
	if err := c.Batch(ctx, make([]complex128, 8), make([]complex128, 7), 1, false); err == nil ||
		!strings.Contains(err.Error(), "len(dst)") {
		t.Errorf("mismatched lengths: %v", err)
	}
	if err := c.Batch(ctx, make([]complex128, 8), make([]complex128, 8), 3, false); err == nil ||
		!strings.Contains(err.Error(), "count") {
		t.Errorf("non-dividing count: %v", err)
	}
}

// TestTransformPeerStopsReading pins the no-hang write path (the fix for
// the deadlineflow findings on transform's frame writes): a peer that
// accepts the connection and then never reads lets the socket buffers fill
// mid-payload, and without a write deadline the client would wedge forever
// inside wire.WriteVector. With the I/O timeout armed, Transform must
// return a timeout error promptly even though the context has no deadline.
func TestTransformPeerStopsReading(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c // hold the conn open; never read from it
		}
	}()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetIOTimeout(200 * time.Millisecond)

	// 8 MiB of payload: far beyond any loopback socket buffering, so the
	// frame write must block in the kernel until the deadline fires.
	n := 1 << 19
	src := make([]complex128, n)
	dst := make([]complex128, n)
	start := time.Now()
	err = cl.Forward(context.Background(), dst, src)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Forward against a peer that never reads returned nil, want a timeout error")
	}
	if elapsed > 10*time.Second {
		t.Fatalf("Forward took %v to fail; the write deadline did not bound the blocked write (err: %v)", elapsed, err)
	}
	select {
	case c := <-accepted:
		c.Close()
	default:
	}
}

func TestAlgConstantsMatchWire(t *testing.T) {
	if Auto != wire.AlgAuto || Exact != wire.AlgExact || SOI != wire.AlgSOI {
		t.Fatal("re-exported algorithm selectors diverged from wire")
	}
}
