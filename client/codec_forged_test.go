package client

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"soifft/internal/codec"
	"soifft/internal/ref"
	"soifft/internal/wire"
)

// forgedBytesPeer is forgedPeer with byte-level control of the response
// payload, for handing the demultiplexer compressed streams of our choosing.
func forgedBytesPeer(t *testing.T, forge func(req wire.Header) (wire.Header, []byte)) *Client {
	t.Helper()
	cs, ss := net.Pipe()
	go func() {
		for {
			h, err := wire.ReadHeader(ss)
			if err != nil {
				return
			}
			if err := wire.DiscardPayload(ss, h.PayloadLen); err != nil {
				return
			}
			rh, payload := forge(h)
			if err := wire.WriteHeader(ss, &rh); err != nil {
				return
			}
			if len(payload) > 0 {
				if _, err := ss.Write(payload); err != nil {
					return
				}
			}
		}
	}()
	cl := New(cs)
	cl.SetIOTimeout(2 * time.Second)
	t.Cleanup(func() {
		cl.Close()
		ss.Close()
	})
	return cl
}

// TestForgedCorruptCodecResponse: a compressed response whose block stream
// fails validation (checksum mismatch) must fail the caller with the typed
// codec corruption error and tear the connection down — the stream position
// inside the declared payload is unknowable, so no resync is possible.
func TestForgedCorruptCodecResponse(t *testing.T) {
	const n = 64
	dp := codec.MustFor(codec.DeltaPlane, 0)
	cl := forgedBytesPeer(t, func(req wire.Header) (wire.Header, []byte) {
		enc := codec.AppendVector(nil, dp, ref.RandomVector(n, 11))
		enc[len(enc)/2] ^= 0x01
		return wire.Header{
			Type: wire.TResult, ReqID: req.ReqID, Count: 1, N: n,
			Codec: codec.DeltaPlane, PayloadLen: uint64(len(enc)),
		}, enc
	})

	src := make([]complex128, n)
	dst := make([]complex128, n)
	err := cl.Forward(context.Background(), dst, src)
	if !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("Forward against corrupt compressed response: %v, want codec.ErrCorrupt", err)
	}
	if err := cl.Forward(context.Background(), dst, src); !errors.Is(err, ErrClosed) {
		t.Errorf("Forward after corrupt compressed response: %v, want ErrClosed", err)
	}
}

// TestForgedBadCodecHeader: response headers with an unknown codec ID, a
// parameter on the identity codec, or a payload beyond the codec size bound
// are protocol violations caught before any read is sized from them.
func TestForgedBadCodecHeader(t *testing.T) {
	const n = 64
	for _, tc := range []struct {
		name string
		resp wire.Header
	}{
		{"unknown codec ID", wire.Header{Type: wire.TResult, Count: 1, N: n,
			Codec: codec.ID(9), PayloadLen: 128}},
		{"quant param zero", wire.Header{Type: wire.TResult, Count: 1, N: n,
			Codec: codec.Quant, PayloadLen: 128}},
		{"payload over codec bound", wire.Header{Type: wire.TResult, Count: 1, N: n,
			Codec: codec.DeltaPlane, PayloadLen: codec.MaxEncodedLen(n) + 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cl := forgedBytesPeer(t, func(req wire.Header) (wire.Header, []byte) {
				rh := tc.resp
				rh.ReqID = req.ReqID
				return rh, nil
			})
			src := make([]complex128, n)
			dst := make([]complex128, n)
			err := cl.Forward(context.Background(), dst, src)
			if err == nil || !strings.Contains(err.Error(), "invalid response geometry") {
				t.Fatalf("Forward against %s: %v, want invalid-geometry error", tc.name, err)
			}
			if err := cl.Forward(context.Background(), dst, src); !errors.Is(err, ErrClosed) {
				t.Errorf("Forward after %s: %v, want ErrClosed", tc.name, err)
			}
		})
	}
}

// TestClientDecodesClampedResponse: the client asked for one lossy fidelity
// but the server answered at another (its budget clamp) — the response
// stream is self-describing, so the client decodes what actually arrived.
func TestClientDecodesClampedResponse(t *testing.T) {
	const n = 64
	want := ref.RandomVector(n, 13)
	clamped, err := codec.NewQuantBits(4) // much finer than the request below
	if err != nil {
		t.Fatal(err)
	}
	cl := forgedBytesPeer(t, func(req wire.Header) (wire.Header, []byte) {
		enc := codec.AppendVector(nil, clamped, want)
		return wire.Header{
			Type: wire.TResult, ReqID: req.ReqID, Count: 1, N: n,
			Codec: codec.Quant, CodecParam: codec.Param(clamped), PayloadLen: uint64(len(enc)),
		}, enc
	})
	if err := cl.SetCodec("quant", 1e-3); err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, n)
	if err := cl.Forward(context.Background(), dst, want); err != nil {
		t.Fatalf("Forward with clamped response: %v", err)
	}
	tol := codec.Tolerance(clamped)
	for i := range dst {
		if r := relDiff(real(want[i]), real(dst[i])); r > tol {
			t.Fatalf("elem %d real: rel diff %g > clamped tol %g", i, r, tol)
		}
		if r := relDiff(imag(want[i]), imag(dst[i])); r > tol {
			t.Fatalf("elem %d imag: rel diff %g > clamped tol %g", i, r, tol)
		}
	}
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if m == 0 {
		return d
	}
	return d / m
}
