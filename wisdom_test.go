package soifft

import (
	"bytes"
	"strings"
	"testing"

	"soifft/internal/cvec"
	"soifft/internal/ref"
)

func TestWisdomRoundTrip(t *testing.T) {
	n := validN(4)
	orig, err := NewPlan(n, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.SaveWisdom(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewPlanFromWisdom(&buf, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != n || loaded.Segments() != orig.Segments() {
		t.Fatalf("loaded metadata: N=%d Segments=%d", loaded.N(), loaded.Segments())
	}
	if loaded.EstimatedError() != orig.EstimatedError() {
		t.Error("diagnostics not preserved")
	}
	x := ref.RandomVector(n, 6)
	a := make([]complex128, n)
	b := make([]complex128, n)
	if err := orig.Forward(a, x); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Forward(b, x); err != nil {
		t.Fatal(err)
	}
	if e := cvec.RelErrL2(a, b); e != 0 {
		t.Errorf("wisdom-rebuilt plan differs by %g", e)
	}
}

func TestWisdomConfigMismatch(t *testing.T) {
	n := validN(4)
	orig, err := NewPlan(n, DefaultConfig()) // structural: Segments=8, mu=8/7, B=72
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.SaveWisdom(&buf); err != nil {
		t.Fatal(err)
	}
	wisdom := buf.Bytes()
	// One case per structural knob (Segments, ConvWidth, the mu pair),
	// including the half-specified oversampling pairs that used to slip
	// through when only OversampleDen was set.
	for _, tc := range []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero config ok", Config{}, true},
		{"matching structural fields ok", Config{Segments: 8, OversampleNum: 8, OversampleDen: 7, ConvWidth: 72}, true},
		{"execution knobs ignored", Config{Workers: 3}, true},
		{"segments mismatch", Config{Segments: 4}, false},
		{"convwidth mismatch", Config{ConvWidth: 48}, false},
		{"mu pair mismatch", Config{OversampleNum: 5, OversampleDen: 4}, false},
		{"mu num-only mismatch", Config{OversampleNum: 5}, false},
		{"mu den-only mismatch", Config{OversampleDen: 4}, false},
		{"mu den-only matching value still half a pair", Config{OversampleDen: 7}, false},
	} {
		_, err := NewPlanFromWisdom(bytes.NewReader(wisdom), tc.cfg)
		if tc.ok && err != nil {
			t.Errorf("%s: rejected: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: config %+v accepted", tc.name, tc.cfg)
		}
	}
}

func TestConfigCanonical(t *testing.T) {
	def := DefaultConfig()
	if got := (Config{}).Canonical(); got != def {
		t.Errorf("zero config canonicalizes to %+v, want %+v", got, def)
	}
	full := Config{Segments: 16, OversampleNum: 5, OversampleDen: 4, ConvWidth: 48, Workers: 2}
	if got := full.Canonical(); got != full {
		t.Errorf("explicit config changed by Canonical: %+v", got)
	}
	if got := def.Canonical(); got != def {
		t.Errorf("default config not a fixed point: %+v", got)
	}
}

func TestWisdomRejectsGarbage(t *testing.T) {
	if _, err := NewPlanFromWisdom(strings.NewReader("not wisdom"), Config{}); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := NewPlanFromWisdom(bytes.NewReader(nil), Config{}); err == nil {
		t.Error("empty input accepted")
	}
}
