package soifft

import (
	"bytes"
	"strings"
	"testing"

	"soifft/internal/cvec"
	"soifft/internal/ref"
)

func TestWisdomRoundTrip(t *testing.T) {
	n := validN(4)
	orig, err := NewPlan(n, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.SaveWisdom(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewPlanFromWisdom(&buf, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != n || loaded.Segments() != orig.Segments() {
		t.Fatalf("loaded metadata: N=%d Segments=%d", loaded.N(), loaded.Segments())
	}
	if loaded.EstimatedError() != orig.EstimatedError() {
		t.Error("diagnostics not preserved")
	}
	x := ref.RandomVector(n, 6)
	a := make([]complex128, n)
	b := make([]complex128, n)
	if err := orig.Forward(a, x); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Forward(b, x); err != nil {
		t.Fatal(err)
	}
	if e := cvec.RelErrL2(a, b); e != 0 {
		t.Errorf("wisdom-rebuilt plan differs by %g", e)
	}
}

func TestWisdomConfigMismatch(t *testing.T) {
	n := validN(4)
	orig, err := NewPlan(n, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.SaveWisdom(&buf); err != nil {
		t.Fatal(err)
	}
	wisdom := buf.Bytes()
	for _, cfg := range []Config{
		{Segments: 4},                        // wisdom has 8
		{ConvWidth: 48},                      // wisdom has 72
		{OversampleNum: 5, OversampleDen: 4}, // wisdom has 8/7
	} {
		if _, err := NewPlanFromWisdom(bytes.NewReader(wisdom), cfg); err == nil {
			t.Errorf("mismatched config %+v accepted", cfg)
		}
	}
}

func TestWisdomRejectsGarbage(t *testing.T) {
	if _, err := NewPlanFromWisdom(strings.NewReader("not wisdom"), Config{}); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := NewPlanFromWisdom(bytes.NewReader(nil), Config{}); err == nil {
		t.Error("empty input accepted")
	}
}
